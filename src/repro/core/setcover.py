"""Algorithm 6: multi-pass streaming set cover.

Theorem 3.4: for any ``ε ∈ (0, 1]`` and ``r ∈ [1, log m]`` the algorithm
returns a ``(1 + ε) log m``-approximate set cover with probability
``1 − 1/n`` and the total number of edges held in sketches plus the residual
graph ``G_r`` is ``O~(n · m^{3/(2+r)}) ⊆ O~(n · m^{O(1/r)})``.

Structure, following the paper's own implementation note:

* ``r − 1`` iterations; iteration ``i`` runs Algorithm 5
  (:class:`StreamingSetCoverOutliers`) with ``λ = m^{−1/(2+r)}`` on the
  *residual* instance ``G_i`` (the original graph minus the elements already
  covered), adding its selection to the solution.
* Each iteration is realised with **two** streaming passes: one that marks
  the elements covered by the sets chosen so far ("virtually constructing
  G_i"), and one that feeds the uncovered elements' edges into the sketches.
* One extra final pass collects every remaining uncovered element's edges
  into ``G_r`` explicitly, and the classical greedy set cover finishes the
  job offline.

Hence the pass count is ``2(r − 1) + 1``, which the class reports honestly
through the :class:`StreamingRunner`.
"""

from __future__ import annotations

import math
from typing import Iterable, Literal

from repro.coverage.bipartite import BipartiteGraph
from repro.core.setcover_outliers import StreamingSetCoverOutliers
from repro.offline.greedy import greedy_set_cover
from repro.streaming.events import EdgeArrival
from repro.streaming.space import SpaceMeter
from repro.utils.validation import check_open_unit, check_positive_int

__all__ = ["StreamingSetCover", "outlier_rate_for_passes"]

Phase = Literal["mark", "sketch", "collect", "done"]


def outlier_rate_for_passes(num_elements: int, iterations: int) -> float:
    """The per-iteration outlier rate ``λ = m^{−1/(2+r)}`` (clamped to (0, 1/e])."""
    check_positive_int(num_elements, "num_elements")
    check_positive_int(iterations, "iterations")
    lam = float(num_elements) ** (-1.0 / (2.0 + iterations))
    return max(1e-6, min(lam, 1.0 / math.e))


class StreamingSetCover:
    """Multi-pass streaming set cover (Algorithm 6).

    Parameters
    ----------
    num_sets, num_elements:
        Instance dimensions ``n`` and ``m``.
    epsilon:
        Approximation slack; the guarantee is ``(1 + ε) log m``.
    rounds:
        The paper's ``r``; the algorithm performs ``r − 1`` sketch-based
        iterations plus a final exact residual pass.  ``rounds=1`` degenerates
        to buffering the whole input and running plain greedy (1 pass).
    confidence, mode, scale, seed:
        Passed through to the per-iteration Algorithm 5 instances.
    allow_partial:
        When the input family does not cover the ground set, return a maximal
        partial cover instead of raising (useful on noisy workloads).
    coverage_backend:
        Optional packed-bitset kernel backend, threaded into every
        iteration's Algorithm 5 instance (each guess's greedy runs on a
        kernel of its sketch) and into the final residual greedy.
    forbidden:
        Set ids excluded from selection in every iteration's Algorithm 5
        check and in the final residual greedy.  The stream passes are
        unaffected.  A nonempty exclusion usually needs ``allow_partial``
        (the remaining family may not cover the ground set).
    """

    def __init__(
        self,
        num_sets: int,
        num_elements: int,
        epsilon: float = 0.3,
        rounds: int = 3,
        *,
        confidence: float = 1.0,
        mode: str = "scaled",
        scale: float = 1.0,
        seed: int = 0,
        max_guesses: int | None = None,
        allow_partial: bool = True,
        coverage_backend: str | None = None,
        forbidden: Iterable[int] = (),
    ) -> None:
        check_positive_int(num_sets, "num_sets")
        check_positive_int(num_elements, "num_elements")
        check_open_unit(epsilon, "epsilon")
        check_positive_int(rounds, "rounds")
        self.name = "bateni-sketch-setcover"
        self.arrival_model = "edge"
        self.num_sets = num_sets
        self.num_elements = num_elements
        self.epsilon = epsilon
        self.rounds = rounds
        self.confidence = confidence
        self.mode = mode
        self.scale = scale
        self.seed = seed
        self.max_guesses = max_guesses
        self.allow_partial = allow_partial
        self.coverage_backend = coverage_backend
        self.forbidden = frozenset(int(s) for s in forbidden)
        self.outlier_rate = outlier_rate_for_passes(num_elements, rounds)
        self.space = SpaceMeter(unit="edges")

        self._covered: set[int] = set()
        self._solution: list[int] = []
        self._phases = self._build_phase_plan()
        self._phase_index = 0
        self._current_outliers: StreamingSetCoverOutliers | None = None
        self._residual: BipartiteGraph | None = None
        self._finalized = False

    # ------------------------------------------------------------------ #
    # phase plan
    # ------------------------------------------------------------------ #
    def _build_phase_plan(self) -> list[tuple[Phase, int]]:
        """The sequence of streaming passes the algorithm will take."""
        if self.rounds == 1:
            return [("collect", 1)]
        plan: list[tuple[Phase, int]] = []
        for iteration in range(1, self.rounds):
            if iteration > 1:
                plan.append(("mark", iteration))
            plan.append(("sketch", iteration))
        plan.append(("mark", self.rounds))
        plan.append(("collect", self.rounds))
        return plan

    @property
    def planned_passes(self) -> int:
        """Total number of streaming passes the phase plan will take."""
        return len(self._phases)

    def current_phase(self) -> tuple[Phase, int]:
        """The phase the next/ongoing pass belongs to."""
        if self._phase_index < len(self._phases):
            return self._phases[self._phase_index]
        return ("done", self.rounds)

    # ------------------------------------------------------------------ #
    # StreamingAlgorithm protocol
    # ------------------------------------------------------------------ #
    def start_pass(self, pass_index: int) -> None:
        """Prepare the state needed by the upcoming pass."""
        phase, iteration = self.current_phase()
        if phase == "sketch":
            self._current_outliers = StreamingSetCoverOutliers(
                self.num_sets,
                self.num_elements,
                self.outlier_rate,
                self.epsilon,
                confidence=self.confidence * max(1, self.rounds - 1),
                mode=self.mode,
                scale=self.scale,
                seed=self.seed + 7919 * iteration,
                max_guesses=self.max_guesses,
                coverage_backend=self.coverage_backend,
                forbidden=self.forbidden,
            )
        elif phase == "collect":
            self._residual = BipartiteGraph(self.num_sets)

    def process(self, event: EdgeArrival) -> None:
        """Route one edge according to the current phase."""
        phase, _ = self.current_phase()
        element_covered = event.element in self._covered
        if phase == "mark":
            if not element_covered and event.set_id in self._chosen_set:
                self._covered.add(event.element)
        elif phase == "sketch":
            if not element_covered:
                assert self._current_outliers is not None
                self._current_outliers.process(event)
        elif phase == "collect":
            if not element_covered:
                assert self._residual is not None
                if self._residual.add_edge(event.set_id, event.element):
                    self.space.charge(1)

    def finish_pass(self, pass_index: int) -> None:
        """Close the current phase; solve when a sketch/collect pass ends."""
        phase, _ = self.current_phase()
        if phase == "sketch":
            assert self._current_outliers is not None
            selection = self._current_outliers.result()
            # Record this iteration's sketch space in the shared meter: the
            # peak contributes to the algorithm's peak, and the sketches are
            # then discarded (only the selection is carried forward).
            iteration_peak = self._current_outliers.space.peak
            self.space.charge(iteration_peak)
            self.space.release(iteration_peak)
            self._extend_solution(selection)
            self._current_outliers = None
        elif phase == "collect":
            from repro.coverage.bitset import kernel_for

            assert self._residual is not None
            result = greedy_set_cover(
                self._residual,
                allow_partial=self.allow_partial,
                forbidden=self.forbidden,
                kernel=kernel_for(self._residual, self.coverage_backend),
            )
            self._extend_solution(result.selected)
            self._finalized = True
        self._phase_index += 1

    def wants_another_pass(self) -> bool:
        """More passes are needed until the phase plan is exhausted."""
        return self._phase_index < len(self._phases)

    def result(self) -> list[int]:
        """The accumulated solution (chosen set ids, de-duplicated, in order)."""
        return list(self._solution)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @property
    def _chosen_set(self) -> set[int]:
        return set(self._solution)

    def _extend_solution(self, selection: list[int]) -> None:
        seen = self._chosen_set
        for set_id in selection:
            if set_id not in seen:
                self._solution.append(int(set_id))
                seen.add(int(set_id))

    def describe(self) -> dict[str, object]:
        """Diagnostics for reports."""
        return {
            "algorithm": self.name,
            "rounds": self.rounds,
            "planned_passes": self.planned_passes,
            "outlier_rate": self.outlier_rate,
            "epsilon": self.epsilon,
            "solution_size": len(self._solution),
            "covered_marked": len(self._covered),
            "space_peak": self.space.peak,
            "finalized": self._finalized,
        }
