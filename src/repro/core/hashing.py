"""Hash families mapping elements to ``[0, 1)``.

The sketch of Section 2 relies on a hash function ``h`` that "uniformly and
independently maps E to [0, 1]".  Truly independent hashing over an unknown
universe is not implementable with small space, so we provide two practical
families with deterministic, seed-controlled behaviour:

* :class:`UniformHash` — SplitMix64 finalisation of the element id; fast,
  stateless, and empirically uniform (the default everywhere).
* :class:`TabulationHash` — simple tabulation hashing (Zobrist tables over
  the element's bytes), which is 3-independent and known to behave like a
  fully random function for many sampling applications.

Both return floats in ``[0, 1)`` and expose ``rank`` (the raw 64-bit value)
for exact tie-breaking where float precision would be a concern.  Both also
expose vectorised ``rank_many`` / ``value_many`` over whole ``uint64`` arrays
(bit-for-bit identical to the scalar forms), which the batched streaming path
uses to hash an entire event batch in a few array operations.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.utils.rng import MASK64, SplitMix64, mix64, mix64_array

__all__ = ["HashFamily", "UniformHash", "TabulationHash", "make_hash"]

_INV_2_64 = 1.0 / float(1 << 64)


@runtime_checkable
class HashFamily(Protocol):
    """Protocol for element hash functions used by the sketches.

    ``rank_many`` / ``value_many`` are optional accelerations: consumers
    (e.g. the batched sketch builder) feature-detect them with ``getattr``
    and fall back to the scalar methods, so third-party hash families only
    need ``value`` and ``rank``.
    """

    def value(self, element: int) -> float:
        """Hash of the element as a float in ``[0, 1)``."""

    def rank(self, element: int) -> int:
        """Hash of the element as an integer in ``[0, 2^64)``."""


class UniformHash:
    """SplitMix64-based hash of integer element ids to ``[0, 1)``.

    Parameters
    ----------
    seed:
        Selects the hash function from the family; two different seeds give
        (empirically) independent functions.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def rank(self, element: int) -> int:
        """64-bit hash rank of an element (deterministic in element, seed)."""
        return mix64(int(element), seed=self.seed)

    def value(self, element: int) -> float:
        """Hash of the element as a float in ``[0, 1)``."""
        return self.rank(element) * _INV_2_64

    def rank_many(self, elements: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`rank` over a ``uint64`` array of element ids."""
        return mix64_array(np.asarray(elements, dtype=np.uint64), seed=self.seed)

    def value_many(self, elements: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value`: ``float64`` array bit-identical to scalar."""
        return self.rank_many(elements).astype(np.float64) * _INV_2_64

    def __call__(self, element: int) -> float:
        return self.value(element)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UniformHash(seed={self.seed})"


class TabulationHash:
    """Simple tabulation hashing of 64-bit element ids.

    The element id is split into 8 bytes; each byte indexes a table of random
    64-bit words (derived deterministically from the seed) and the words are
    XOR-ed together.  Simple tabulation is 3-independent and behaves like a
    truly random hash function for min-wise sampling and distinct counting,
    which is what the sketches need.
    """

    __slots__ = ("seed", "_tables", "_table_array")

    _NUM_TABLES = 8
    _TABLE_SIZE = 256

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        generator = SplitMix64(state=mix64(self.seed, seed=0x7AB17A7))
        self._tables = [
            [generator.next_uint64() for _ in range(self._TABLE_SIZE)]
            for _ in range(self._NUM_TABLES)
        ]
        self._table_array = np.array(self._tables, dtype=np.uint64)

    def rank(self, element: int) -> int:
        """64-bit hash rank of an element."""
        key = int(element) & MASK64
        out = 0
        for table_index in range(self._NUM_TABLES):
            byte = (key >> (8 * table_index)) & 0xFF
            out ^= self._tables[table_index][byte]
        return out

    def value(self, element: int) -> float:
        """Hash of the element as a float in ``[0, 1)``."""
        return self.rank(element) * _INV_2_64

    def rank_many(self, elements: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`rank`: per-byte table lookups over the array."""
        key = np.asarray(elements, dtype=np.uint64)
        out = np.zeros_like(key)
        for table_index in range(self._NUM_TABLES):
            byte = (key >> np.uint64(8 * table_index)) & np.uint64(0xFF)
            out ^= self._table_array[table_index][byte.astype(np.intp)]
        return out

    def value_many(self, elements: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value`: ``float64`` array bit-identical to scalar."""
        return self.rank_many(elements).astype(np.float64) * _INV_2_64

    def __call__(self, element: int) -> float:
        return self.value(element)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TabulationHash(seed={self.seed})"


def make_hash(kind: str = "uniform", seed: int = 0) -> HashFamily:
    """Factory for the hash families by name (``"uniform"`` or ``"tabulation"``)."""
    if kind == "uniform":
        return UniformHash(seed)
    if kind == "tabulation":
        return TabulationHash(seed)
    raise ValueError(f"unknown hash family {kind!r}; expected 'uniform' or 'tabulation'")
