"""The coverage sketch of Section 2: ``H_p``, ``H'_p`` and ``H_{<=n}``.

Construction pipeline (offline view, Figure 1 / Algorithm 1):

1. ``H_p`` — keep every set vertex and exactly the elements whose hash value
   ``h(e)`` is at most ``p`` (a uniform element sample at rate ``p``).
2. ``H'_p`` — additionally cap the degree of every kept element at
   ``n log(1/ε) / (ε k)``, discarding surplus edges arbitrarily.
3. ``H_{<=n}`` — instead of fixing ``p``, admit elements in increasing hash
   order until the number of stored edges reaches the edge budget of
   Definition 2.1; the resulting threshold ``p*`` is data dependent.

The central guarantee (Theorem 2.7): with probability ``1 − 3e^{−δ''}``, any
α-approximate k-cover solution computed **on the sketch** is an
``(α − 12ε)``-approximate solution on the original input.  The estimator of
Lemma 2.2, ``C(S) ≈ |Γ(H_p, S)| / p``, is also exposed.

:class:`CoverageSketch` is the result object shared by the offline builder in
this module and the streaming builder in
:mod:`repro.core.streaming_sketch`; everything downstream (Algorithms 3–6)
only sees this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.coverage.bipartite import BipartiteGraph
from repro.core.hashing import HashFamily, UniformHash
from repro.core.params import SketchParams
from repro.utils.validation import check_open_unit

__all__ = [
    "CoverageSketch",
    "build_hp",
    "apply_degree_cap",
    "build_hp_prime",
    "build_h_leq_n",
]


@dataclass
class CoverageSketch:
    """A degree-capped, element-sampled subgraph plus its sampling threshold.

    Attributes
    ----------
    graph:
        The sketch subgraph (all ``n`` set vertices, a subset of elements,
        degree-capped edges).
    params:
        The budgets the sketch was built with.
    threshold:
        The effective sampling probability ``p*``: the largest hash value
        among admitted elements (1.0 when every element was admitted).
    element_hashes:
        Hash value of every admitted element (used by the estimator, by
        re-thresholding, and by the tests).
    truncated_elements:
        Elements whose degree hit the cap and lost edges (``H'_p ≠ H_p``).
    """

    graph: BipartiteGraph
    params: SketchParams
    threshold: float
    element_hashes: dict[int, float] = field(default_factory=dict)
    truncated_elements: frozenset[int] = frozenset()

    # ------------------------------------------------------------------ #
    # sizes
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Edges stored in the sketch (the space the paper counts)."""
        return self.graph.num_edges

    @property
    def num_elements(self) -> int:
        """Admitted (sampled) elements."""
        return self.graph.num_elements

    # ------------------------------------------------------------------ #
    # coverage estimation (Lemma 2.2)
    # ------------------------------------------------------------------ #
    def sketch_coverage(self, set_ids: Iterable[int]) -> int:
        """``|Γ(H, S)|`` — coverage inside the sketch."""
        return self.graph.coverage(set_ids)

    def estimate_coverage(self, set_ids: Iterable[int]) -> float:
        """Estimate ``C(S)`` on the original input as ``|Γ(H, S)| / p*``."""
        if self.threshold <= 0.0:
            return 0.0
        return self.graph.coverage(set_ids) / self.threshold

    def estimate_total_elements(self) -> float:
        """Estimate ``m`` (the ground-set size) as ``(#sampled elements) / p*``."""
        if self.threshold <= 0.0:
            return 0.0
        return self.graph.num_elements / self.threshold

    def coverage_fraction(self, set_ids: Iterable[int]) -> float:
        """Fraction of the *sketch's* elements covered by ``set_ids``.

        Algorithm 4 checks its coverage condition against the sketch, not the
        original graph — this is that quantity.
        """
        return self.graph.coverage_fraction(set_ids)

    def restrict_to_threshold(self, p: float) -> "CoverageSketch":
        """Return the sub-sketch of elements with hash at most ``p``.

        This realises the nesting ``H'_{p_j} ⊆ H'_{p*} ⊆ H'_{p_{j+1}}`` used
        in the proof of Theorem 2.7 and is handy for ablations.
        """
        check_open_unit(p, "p")
        keep = [e for e, h in self.element_hashes.items() if h <= p]
        sub = self.graph.induced_on_elements(keep)
        hashes = {e: self.element_hashes[e] for e in keep}
        return CoverageSketch(
            graph=sub,
            params=self.params,
            threshold=min(p, self.threshold),
            element_hashes=hashes,
            truncated_elements=frozenset(t for t in self.truncated_elements if t in hashes),
        )

    def describe(self) -> Mapping[str, float | int]:
        """Summary dict for reports."""
        return {
            "edges": self.num_edges,
            "elements": self.num_elements,
            "threshold": self.threshold,
            "truncated_elements": len(self.truncated_elements),
            "edge_budget": self.params.edge_budget,
            "degree_cap": self.params.degree_cap,
        }


# ---------------------------------------------------------------------- #
# offline builders
# ---------------------------------------------------------------------- #
def build_hp(
    graph: BipartiteGraph, p: float, hash_fn: HashFamily | None = None, *, seed: int = 0
) -> BipartiteGraph:
    """Build ``H_p``: keep the elements with hash value at most ``p``.

    Parameters
    ----------
    graph:
        The full input graph.
    p:
        The sampling threshold in ``(0, 1]``.
    hash_fn:
        The element hash; defaults to :class:`UniformHash` with ``seed``.
    """
    check_open_unit(p, "p")
    hash_fn = hash_fn or UniformHash(seed)
    keep = [element for element in graph.elements() if hash_fn.value(element) <= p]
    return graph.induced_on_elements(keep)


def apply_degree_cap(
    graph: BipartiteGraph, degree_cap: int, *, deterministic: bool = True
) -> tuple[BipartiteGraph, frozenset[int]]:
    """Build ``H'_p`` from ``H_p``: cap every element's degree at ``degree_cap``.

    Surplus edges are discarded "arbitrarily" in the paper; here the kept
    edges are the ones with the smallest set ids when ``deterministic`` is
    true (reproducible), otherwise insertion order is used.

    Returns the capped graph and the frozenset of elements that lost edges.
    """
    if degree_cap < 1:
        raise ValueError("degree_cap must be >= 1")
    capped = BipartiteGraph(graph.num_sets)
    truncated: set[int] = set()
    for element in graph.elements():
        owners = sorted(graph.sets_of(element)) if deterministic else list(graph.sets_of(element))
        if len(owners) > degree_cap:
            truncated.add(element)
            owners = owners[:degree_cap]
        for set_id in owners:
            capped.add_edge(set_id, element)
    return capped, frozenset(truncated)


def build_hp_prime(
    graph: BipartiteGraph,
    p: float,
    params: SketchParams,
    hash_fn: HashFamily | None = None,
    *,
    seed: int = 0,
) -> CoverageSketch:
    """Build ``H'_p`` as a :class:`CoverageSketch` (sampling + degree cap)."""
    hash_fn = hash_fn or UniformHash(seed)
    hp = build_hp(graph, p, hash_fn)
    capped, truncated = apply_degree_cap(hp, params.degree_cap)
    hashes = {element: hash_fn.value(element) for element in capped.elements()}
    return CoverageSketch(
        graph=capped,
        params=params,
        threshold=p,
        element_hashes=hashes,
        truncated_elements=truncated,
    )


def build_h_leq_n(
    graph: BipartiteGraph,
    params: SketchParams,
    hash_fn: HashFamily | None = None,
    *,
    seed: int = 0,
) -> CoverageSketch:
    """Offline construction of ``H_{<=n}`` (Algorithm 1).

    Elements are admitted in increasing hash order; each contributes at most
    ``degree_cap`` edges; admission stops once the number of stored edges
    reaches ``params.edge_budget`` (or the input is exhausted).  The
    resulting data-dependent threshold ``p*`` is the hash of the last
    admitted element (1.0 if every element was admitted, matching the
    convention that the sketch then *is* the input restricted by the cap).
    """
    hash_fn = hash_fn or UniformHash(seed)
    order = sorted(graph.elements(), key=lambda element: (hash_fn.value(element), element))
    sketch_graph = BipartiteGraph(graph.num_sets)
    hashes: dict[int, float] = {}
    truncated: set[int] = set()
    threshold = 1.0
    admitted_all = True
    for element in order:
        if sketch_graph.num_edges >= params.edge_budget:
            admitted_all = False
            break
        owners = sorted(graph.sets_of(element))
        if len(owners) > params.degree_cap:
            truncated.add(element)
            owners = owners[: params.degree_cap]
        for set_id in owners:
            sketch_graph.add_edge(set_id, element)
        hashes[element] = hash_fn.value(element)
    if not admitted_all and hashes:
        threshold = max(hashes.values())
    return CoverageSketch(
        graph=sketch_graph,
        params=params,
        threshold=threshold,
        element_hashes=hashes,
        truncated_elements=frozenset(truncated),
    )
