"""Sketch parameterisation.

Definition 2.1 of the paper fixes two quantities for the sketch
``H_{<=n}(k, ε, δ'')``:

* the **degree cap** applied to element vertices,
  :math:`\\frac{n \\log(1/\\varepsilon)}{\\varepsilon k}`, and
* the **edge budget** at which the construction stops admitting elements,
  :math:`\\frac{24\\, n\\, \\delta\\, \\log(1/\\varepsilon)\\, \\log n}
  {(1-\\varepsilon)\\,\\varepsilon^3}` with
  :math:`\\delta = \\delta'' \\cdot \\log\\bigl(\\log_{1/(1-\\varepsilon)} m\\bigr)`.

Both are ``O~(n)`` and independent of ``m`` — that is the headline result —
but the constants are sized for a worst-case analysis; on laptop-scale
instances the theoretical budget typically exceeds the total number of edges
(so the "sketch" would simply retain the whole input).  To make the space /
quality trade-off *observable* the factory also offers:

* :meth:`SketchParams.scaled` — same formulas with a multiplicative scale
  factor applied to the edge budget (the degree cap is kept), and
* :meth:`SketchParams.explicit` — budgets chosen directly by the caller.

All three modes produce the same dataclass, and the construction code never
looks at the mode — only at the two budgets — so the scaled benchmarks
exercise exactly the code path the theory describes.  DESIGN.md §3 documents
this substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.utils.validation import check_open_unit, check_positive_int

__all__ = ["SketchParams"]


def _safe_log(value: float, minimum: float = 1.0) -> float:
    """Natural log clamped below by ``minimum`` (the paper's logs are all >= 1)."""
    return max(minimum, math.log(max(value, 1.0 + 1e-12)))


def _log_inv_epsilon(epsilon: float) -> float:
    """``log(1/ε)`` with a tiny floor so ε = 1 keeps the formulas finite."""
    return max(math.log(1.0 / epsilon), 1e-9) if epsilon < 1.0 else 1e-9


@dataclass(frozen=True)
class SketchParams:
    """Budgets controlling one ``H_{<=n}`` sketch instance.

    Attributes
    ----------
    num_sets:
        ``n`` — number of sets (known up front).
    num_elements:
        ``m`` — number of elements, or any upper bound (enters only through
        ``log log m``).
    k:
        The solution-size parameter of the sketch.
    epsilon:
        The accuracy parameter ``ε ∈ (0, 1]``.
    delta_prime:
        The failure-probability exponent ``δ''``.
    edge_budget:
        Number of stored edges at which the construction stops admitting new
        elements (Definition 2.1's threshold).
    degree_cap:
        Maximum number of edges kept per element vertex (``H'_p``).
    eviction_slack:
        Extra edges the *streaming* construction may hold transiently before
        evicting the highest-ranked element (Algorithm 2 allows
        ``edge_budget + degree_cap``).
    mode:
        ``"theoretical"``, ``"scaled"`` or ``"explicit"`` — informational.
    """

    num_sets: int
    num_elements: int
    k: int
    epsilon: float
    delta_prime: float
    edge_budget: int
    degree_cap: int
    eviction_slack: int
    mode: str = "theoretical"

    # ------------------------------------------------------------------ #
    # factories
    # ------------------------------------------------------------------ #
    @staticmethod
    def theoretical_degree_cap(num_sets: int, k: int, epsilon: float) -> int:
        """The paper's degree cap ``n log(1/ε) / (ε k)`` (at least 1)."""
        cap = num_sets * _log_inv_epsilon(epsilon) / (epsilon * k)
        return max(1, math.ceil(cap))

    @staticmethod
    def theoretical_delta(num_elements: int, epsilon: float, delta_prime: float) -> float:
        """``δ = δ'' · log(log_{1/(1-ε)} m)`` from Definition 2.1 (clamped ≥ δ'')."""
        if epsilon >= 1.0:
            levels = _safe_log(num_elements)
        else:
            levels = _safe_log(num_elements) / -math.log(1.0 - epsilon)
        return max(delta_prime, delta_prime * _safe_log(levels))

    @staticmethod
    def theoretical_edge_budget(
        num_sets: int, num_elements: int, epsilon: float, delta_prime: float
    ) -> int:
        """The paper's edge budget ``24 n δ log(1/ε) log n / ((1-ε) ε³)``."""
        delta = SketchParams.theoretical_delta(num_elements, epsilon, delta_prime)
        denominator = max(1e-12, (1.0 - epsilon)) * epsilon**3
        budget = (
            24.0 * num_sets * delta * max(_log_inv_epsilon(epsilon), 0.1) * _safe_log(num_sets)
        ) / denominator
        return max(num_sets, math.ceil(budget))

    @classmethod
    def theoretical(
        cls,
        num_sets: int,
        num_elements: int,
        k: int,
        epsilon: float,
        delta_prime: float = 1.0,
    ) -> "SketchParams":
        """Budgets exactly as written in Definition 2.1 / Algorithm 2."""
        check_positive_int(num_sets, "num_sets")
        check_positive_int(num_elements, "num_elements")
        check_positive_int(k, "k")
        check_open_unit(epsilon, "epsilon")
        if delta_prime <= 0:
            raise ValueError("delta_prime must be positive")
        degree_cap = cls.theoretical_degree_cap(num_sets, k, epsilon)
        edge_budget = cls.theoretical_edge_budget(num_sets, num_elements, epsilon, delta_prime)
        return cls(
            num_sets=num_sets,
            num_elements=num_elements,
            k=k,
            epsilon=epsilon,
            delta_prime=delta_prime,
            edge_budget=edge_budget,
            degree_cap=degree_cap,
            eviction_slack=degree_cap,
            mode="theoretical",
        )

    @classmethod
    def scaled(
        cls,
        num_sets: int,
        num_elements: int,
        k: int,
        epsilon: float,
        *,
        delta_prime: float = 1.0,
        scale: float = 1.0,
        min_edges_per_set: int = 4,
    ) -> "SketchParams":
        """Practically sized budgets: ``edge_budget ≈ scale · n · log n / ε``.

        The shape (linear in ``n``, independent of ``m``, ``1/ε`` dependence)
        matches the theory; the worst-case constant 24·δ·log(1/ε)/((1-ε)ε²)
        is replaced by the tunable ``scale``.  The degree cap is the paper's.
        """
        check_positive_int(num_sets, "num_sets")
        check_positive_int(num_elements, "num_elements")
        check_positive_int(k, "k")
        check_open_unit(epsilon, "epsilon")
        if scale <= 0:
            raise ValueError("scale must be positive")
        degree_cap = cls.theoretical_degree_cap(num_sets, k, epsilon)
        edge_budget = math.ceil(
            scale * num_sets * _safe_log(num_sets) / epsilon
        )
        edge_budget = max(edge_budget, min_edges_per_set * num_sets, k + 1)
        return cls(
            num_sets=num_sets,
            num_elements=num_elements,
            k=k,
            epsilon=epsilon,
            delta_prime=delta_prime,
            edge_budget=edge_budget,
            degree_cap=degree_cap,
            eviction_slack=degree_cap,
            mode="scaled",
        )

    @classmethod
    def explicit(
        cls,
        num_sets: int,
        num_elements: int,
        k: int,
        epsilon: float,
        *,
        edge_budget: int,
        degree_cap: int | None = None,
        delta_prime: float = 1.0,
        eviction_slack: int | None = None,
    ) -> "SketchParams":
        """Budgets supplied directly (used by ablations and unit tests)."""
        check_positive_int(num_sets, "num_sets")
        check_positive_int(num_elements, "num_elements")
        check_positive_int(k, "k")
        check_open_unit(epsilon, "epsilon")
        check_positive_int(edge_budget, "edge_budget")
        if degree_cap is None:
            degree_cap = cls.theoretical_degree_cap(num_sets, k, epsilon)
        check_positive_int(degree_cap, "degree_cap")
        slack = degree_cap if eviction_slack is None else eviction_slack
        return cls(
            num_sets=num_sets,
            num_elements=num_elements,
            k=k,
            epsilon=epsilon,
            delta_prime=delta_prime,
            edge_budget=edge_budget,
            degree_cap=degree_cap,
            eviction_slack=slack,
            mode="explicit",
        )

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def max_stored_edges(self) -> int:
        """Upper bound on edges the streaming builder may hold at any time."""
        return self.edge_budget + self.eviction_slack

    @property
    def sample_size(self) -> int:
        """Number of elements Algorithm 2 pre-samples (budget + degree cap edges)."""
        return self.edge_budget + self.degree_cap

    def with_k(self, k: int) -> "SketchParams":
        """Copy of the parameters for a different ``k``.

        The degree cap is recomputed (it depends on ``k``); the edge budget
        is kept, matching how Algorithm 5 reuses one budget across guesses.
        """
        check_positive_int(k, "k")
        return replace(
            self,
            k=k,
            degree_cap=self.theoretical_degree_cap(self.num_sets, k, self.epsilon),
        )

    def describe(self) -> dict[str, float | int | str]:
        """Summary dict for logs and reports."""
        return {
            "mode": self.mode,
            "n": self.num_sets,
            "m": self.num_elements,
            "k": self.k,
            "epsilon": self.epsilon,
            "delta_prime": self.delta_prime,
            "edge_budget": self.edge_budget,
            "degree_cap": self.degree_cap,
            "eviction_slack": self.eviction_slack,
        }
