"""McGregor–Vu-style element-sampling streaming k-cover.

Section 1.3.1 notes a simultaneous and independent work (McGregor & Vu,
arXiv:1610.06199) that also achieves a single-pass ``1 − 1/e − ε``
approximation for k-cover in ``O~(n)`` space, by a different route: instead
of a generic sketch with an approximation-preserving guarantee, they analyse
the greedy algorithm directly on a subsampled universe.

Implementation note
-------------------
The core of their approach: subsample elements at rate
``p ≈ c·k·log n / (ε²·OPT)`` and run greedy on the subsample.  Since ``OPT``
is unknown, ``O(log m / ε)`` geometric guesses are maintained in parallel
(each guess owns an independent subsample whose stored edges are capped) and
the final answer is the guess whose subsampled greedy value, rescaled by its
rate, is largest.  This is edge-arrival friendly — the subsample decision
depends only on the element — so the class consumes edge arrivals like the
paper's own algorithm, making the Table 1 comparison apples-to-apples.
"""

from __future__ import annotations

import math

import numpy as np

from repro.coverage.bipartite import BipartiteGraph
from repro.core.hashing import UniformHash
from repro.offline.greedy import greedy_k_cover
from repro.streaming.batches import EventBatch
from repro.streaming.events import EdgeArrival
from repro.streaming.space import SpaceMeter
from repro.utils.validation import check_open_unit, check_positive_int

__all__ = ["McGregorVuKCover"]


class _GuessState:
    """Subsample state for one guess of OPT."""

    __slots__ = ("rate", "graph", "max_edges", "overflowed")

    def __init__(self, rate: float, num_sets: int, max_edges: int) -> None:
        self.rate = rate
        self.graph = BipartiteGraph(num_sets)
        self.max_edges = max_edges
        self.overflowed = False


class McGregorVuKCover:
    """Single-pass element-sampling streaming k-cover (edge-arrival)."""

    def __init__(
        self,
        num_sets: int,
        num_elements: int,
        k: int,
        epsilon: float = 0.2,
        *,
        sample_constant: float = 2.0,
        seed: int = 0,
    ) -> None:
        check_positive_int(num_sets, "num_sets")
        check_positive_int(num_elements, "num_elements")
        check_positive_int(k, "k")
        check_open_unit(epsilon, "epsilon")
        self.name = "mcgregor-vu-sampling"
        self.arrival_model = "edge"
        self.k = k
        self.epsilon = epsilon
        self.num_sets = num_sets
        self.space = SpaceMeter(unit="edges")
        self._hash = UniformHash(seed)

        # Geometric guesses of OPT between k (any solution covers >= k... at
        # least 1 per set picked is not guaranteed, so start at 1) and m.
        base_numerator = sample_constant * k * max(1.0, math.log(max(2, num_sets)))
        per_guess_cap = max(
            num_sets,
            math.ceil(base_numerator / (epsilon * epsilon)) * 4,
        )
        self._guesses: list[_GuessState] = []
        guess_value = max(1.0, float(k))
        while True:
            rate = min(1.0, base_numerator / (epsilon * epsilon * guess_value))
            self._guesses.append(_GuessState(rate, num_sets, per_guess_cap))
            if guess_value >= num_elements:
                break
            guess_value *= 2.0
        self._solution: list[int] | None = None

    # ------------------------------------------------------------------ #
    # StreamingAlgorithm protocol
    # ------------------------------------------------------------------ #
    def start_pass(self, pass_index: int) -> None:
        """Single-pass algorithm."""
        if pass_index > 0:  # pragma: no cover - defensive
            raise RuntimeError("McGregorVuKCover is a single-pass algorithm")

    def process(self, event: EdgeArrival) -> None:
        """Route the edge into every guess whose subsample admits the element."""
        self._route(event.set_id, event.element, self._hash.value(event.element))

    def process_batch(self, batch: EventBatch) -> None:
        """Route a whole columnar edge batch, sampling test vectorised.

        The per-edge sampling test — "is the element's hash below the guess's
        subsample rate?" — is evaluated for the entire batch with one
        ``value_many`` call, and edges whose hash exceeds the largest rate of
        any live guess are dropped wholesale (rates are fixed per guess and
        guesses only leave the live set by overflowing, so the scalar path
        would drop every one of them too).  Survivors go through the scalar
        routing, keeping batched runs byte-identical to the unrolling shim.
        """
        if batch.offsets is not None:
            raise TypeError("McGregorVuKCover consumes edge batches, got a set batch")
        value_many = getattr(self._hash, "value_many", None)
        if value_many is None or len(batch) == 0:
            for event in batch.iter_events():
                self.process(event)
            return
        values = value_many(batch.elements)
        max_rate = max((s.rate for s in self._guesses if not s.overflowed), default=0.0)
        survivors = np.flatnonzero(values <= max_rate)
        if not len(survivors):
            return
        set_ids = batch.set_ids[survivors].tolist()
        elements = batch.elements[survivors].tolist()
        hashes = values[survivors].tolist()
        for set_id, element, element_hash in zip(set_ids, elements, hashes):
            self._route(set_id, element, element_hash)

    def _route(self, set_id: int, element: int, element_hash: float) -> None:
        """Per-edge admission into every guess (shared scalar logic)."""
        for state in self._guesses:
            if state.overflowed or element_hash > state.rate:
                continue
            if state.graph.num_edges >= state.max_edges:
                state.overflowed = True
                continue
            if state.graph.add_edge(set_id, element):
                self.space.charge(1)

    def finish_pass(self, pass_index: int) -> None:
        """Nothing to finalise."""

    def wants_another_pass(self) -> bool:
        """Always ``False``: single pass."""
        return False

    def result(self) -> list[int]:
        """Greedy on each subsample; return the guess with the best rescaled value."""
        if self._solution is None:
            best_solution: list[int] = []
            best_value = -1.0
            for state in self._guesses:
                if state.graph.num_edges == 0 or state.rate <= 0:
                    continue
                greedy = greedy_k_cover(state.graph, self.k)
                rescaled = greedy.coverage / state.rate
                if rescaled > best_value and not state.overflowed:
                    best_value = rescaled
                    best_solution = greedy.selected
            if not best_solution:
                # Fall back to the densest subsample even if it overflowed.
                usable = [s for s in self._guesses if s.graph.num_edges > 0]
                if usable:
                    state = max(usable, key=lambda s: s.graph.num_edges)
                    best_solution = greedy_k_cover(state.graph, self.k).selected
            self._solution = best_solution
        return self._solution

    # ------------------------------------------------------------------ #
    # extras
    # ------------------------------------------------------------------ #
    def num_guesses(self) -> int:
        """Number of parallel OPT guesses maintained."""
        return len(self._guesses)

    def describe(self) -> dict[str, object]:
        """Diagnostics for reports."""
        return {
            "algorithm": self.name,
            "k": self.k,
            "epsilon": self.epsilon,
            "guesses": len(self._guesses),
            "space_peak": self.space.peak,
        }
