"""Saha–Getoor-style single-pass swap streaming for k-cover.

The first streaming max-coverage result the paper compares against
(Table 1, "k-cover [44]"): a single-pass **set-arrival** algorithm with a
``1/4`` approximation guarantee and ``O~(m)`` space — it stores the actual
covered elements of its current solution, so its space grows with the ground
set, unlike the paper's ``O~(n)`` sketch.

Implementation note
-------------------
Saha & Getoor (SDM 2009) maintain a candidate solution of ``k`` sets and
perform a swap when an arriving set improves the solution sufficiently.  We
implement the standard swap rule with the classic ``1/4`` analysis: each kept
set is *charged* the elements it newly contributed on arrival; an arriving
set ``S`` replaces the kept set of minimum charge when the marginal coverage
of ``S`` exceeds **twice** that minimum charge.  (Where the original leaves
tie-breaking open we break ties by set id.)
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.streaming.batches import EventBatch
from repro.streaming.events import SetArrival
from repro.streaming.space import SpaceMeter
from repro.utils.validation import check_positive_int

__all__ = ["SahaGetoorKCover"]


class SahaGetoorKCover:
    """Single-pass swap-based streaming k-cover (set-arrival, ¼-approx)."""

    def __init__(self, k: int, *, swap_factor: float = 2.0) -> None:
        check_positive_int(k, "k")
        if swap_factor <= 1.0:
            raise ValueError("swap_factor must exceed 1.0 for the swap analysis")
        self.name = "saha-getoor-swap"
        self.arrival_model = "set"
        self.k = k
        self.swap_factor = swap_factor
        self.space = SpaceMeter(unit="stored items")
        # slot -> (set_id, charged elements)
        self._slots: list[tuple[int, set[int]]] = []
        self._covered: set[int] = set()

    # ------------------------------------------------------------------ #
    # StreamingAlgorithm protocol
    # ------------------------------------------------------------------ #
    def start_pass(self, pass_index: int) -> None:
        """Single-pass algorithm."""
        if pass_index > 0:  # pragma: no cover - defensive
            raise RuntimeError("SahaGetoorKCover is a single-pass algorithm")

    def process(self, event: SetArrival) -> None:
        """Consider one arriving set for insertion or swap."""
        self._offer(event.set_id, event.elements)

    def process_batch(self, batch: EventBatch) -> None:
        """Offer a whole columnar set batch without per-event objects.

        Reads the CSR columns directly and prefilters with the vectorised
        member counts: once the ``k`` slots are full, a swap requires the
        arriving set's marginal gain to reach ``swap_factor`` times the
        minimum slot charge, and the member count bounds the gain from
        above — so sets whose count already fails the test are skipped
        outright.  The minimum charge never decreases while the solution is
        full (a swap replaces the minimum-charge victim with a strictly
        larger charge), so the test stays valid as the batch advances, and
        survivors go through the exact scalar offer logic: batched runs are
        byte-identical to the unrolling shim.
        """
        if batch.offsets is None:
            raise TypeError("SahaGetoorKCover consumes set batches, got an edge batch")
        # Admission is sequential and data-dependent (each offer can swap a
        # slot), so survivors are processed one set at a time; the columns
        # convert to Python once per batch, not once per event.
        set_ids = batch.set_ids.tolist()  # repro-lint: disable=hot-path-hygiene -- sequential swap logic; one conversion per batch
        bounds = batch.offsets.tolist()  # repro-lint: disable=hot-path-hygiene -- sequential swap logic; one conversion per batch
        member_counts = np.diff(batch.offsets)
        elements = batch.elements
        min_charge = None
        for index, set_id in enumerate(set_ids):
            if len(self._slots) >= self.k:
                if min_charge is None:
                    min_charge = min(len(charge) for _, charge in self._slots)
                if member_counts[index] < self.swap_factor * max(1, min_charge):
                    continue
            if self._offer(set_id, elements[bounds[index] : bounds[index + 1]].tolist()):
                min_charge = None  # a swap (or fill-up) moved the charges

    def _offer(self, set_id: int, elements: Iterable[int]) -> bool:
        """Scalar offer logic shared by the event and batch paths.

        Returns whether the maintained solution changed.
        """
        members = set(elements)
        gain = members - self._covered
        if len(self._slots) < self.k:
            if not gain and self._slots:
                return False
            self._slots.append((set_id, set(gain)))
            self._covered |= gain
            self.space.charge(len(gain) + 1)
            return True
        if not gain:
            return False
        # Find the slot with the smallest charge.
        victim_index = min(
            range(len(self._slots)), key=lambda i: (len(self._slots[i][1]), self._slots[i][0])
        )
        victim_id, victim_charge = self._slots[victim_index]
        if len(gain) >= self.swap_factor * max(1, len(victim_charge)):
            # Swap: the victim's charged elements leave the cover unless they
            # are also covered by another slot's charge (charges are disjoint
            # by construction, so they simply leave).
            self._covered -= victim_charge
            self.space.release(len(victim_charge) + 1)
            gain = members - self._covered
            self._slots[victim_index] = (set_id, set(gain))
            self._covered |= gain
            self.space.charge(len(gain) + 1)
            return True
        return False

    def finish_pass(self, pass_index: int) -> None:
        """Nothing to finalise."""

    def wants_another_pass(self) -> bool:
        """Always ``False``: single pass."""
        return False

    def result(self) -> list[int]:
        """The set ids currently held in the k slots."""
        return [set_id for set_id, _ in self._slots]

    # ------------------------------------------------------------------ #
    # extras
    # ------------------------------------------------------------------ #
    def current_coverage(self) -> int:
        """Coverage of the maintained solution according to its own bookkeeping."""
        return len(self._covered)

    def describe(self) -> dict[str, object]:
        """Diagnostics for reports."""
        return {
            "algorithm": self.name,
            "k": self.k,
            "swap_factor": self.swap_factor,
            "tracked_coverage": len(self._covered),
            "space_peak": self.space.peak,
        }
