"""Saha–Getoor-style single-pass swap streaming for k-cover.

The first streaming max-coverage result the paper compares against
(Table 1, "k-cover [44]"): a single-pass **set-arrival** algorithm with a
``1/4`` approximation guarantee and ``O~(m)`` space — it stores the actual
covered elements of its current solution, so its space grows with the ground
set, unlike the paper's ``O~(n)`` sketch.

Implementation note
-------------------
Saha & Getoor (SDM 2009) maintain a candidate solution of ``k`` sets and
perform a swap when an arriving set improves the solution sufficiently.  We
implement the standard swap rule with the classic ``1/4`` analysis: each kept
set is *charged* the elements it newly contributed on arrival; an arriving
set ``S`` replaces the kept set of minimum charge when the marginal coverage
of ``S`` exceeds **twice** that minimum charge.  (Where the original leaves
tie-breaking open we break ties by set id.)
"""

from __future__ import annotations

from repro.streaming.events import SetArrival
from repro.streaming.space import SpaceMeter
from repro.utils.validation import check_positive_int

__all__ = ["SahaGetoorKCover"]


class SahaGetoorKCover:
    """Single-pass swap-based streaming k-cover (set-arrival, ¼-approx)."""

    def __init__(self, k: int, *, swap_factor: float = 2.0) -> None:
        check_positive_int(k, "k")
        if swap_factor <= 1.0:
            raise ValueError("swap_factor must exceed 1.0 for the swap analysis")
        self.name = "saha-getoor-swap"
        self.arrival_model = "set"
        self.k = k
        self.swap_factor = swap_factor
        self.space = SpaceMeter(unit="stored items")
        # slot -> (set_id, charged elements)
        self._slots: list[tuple[int, set[int]]] = []
        self._covered: set[int] = set()

    # ------------------------------------------------------------------ #
    # StreamingAlgorithm protocol
    # ------------------------------------------------------------------ #
    def start_pass(self, pass_index: int) -> None:
        """Single-pass algorithm."""
        if pass_index > 0:  # pragma: no cover - defensive
            raise RuntimeError("SahaGetoorKCover is a single-pass algorithm")

    def process(self, event: SetArrival) -> None:
        """Consider one arriving set for insertion or swap."""
        members = set(event.elements)
        gain = members - self._covered
        if len(self._slots) < self.k:
            if not gain and self._slots:
                return
            self._slots.append((event.set_id, set(gain)))
            self._covered |= gain
            self.space.charge(len(gain) + 1)
            return
        if not gain:
            return
        # Find the slot with the smallest charge.
        victim_index = min(
            range(len(self._slots)), key=lambda i: (len(self._slots[i][1]), self._slots[i][0])
        )
        victim_id, victim_charge = self._slots[victim_index]
        if len(gain) >= self.swap_factor * max(1, len(victim_charge)):
            # Swap: the victim's charged elements leave the cover unless they
            # are also covered by another slot's charge (charges are disjoint
            # by construction, so they simply leave).
            self._covered -= victim_charge
            self.space.release(len(victim_charge) + 1)
            gain = members - self._covered
            self._slots[victim_index] = (event.set_id, set(gain))
            self._covered |= gain
            self.space.charge(len(gain) + 1)

    def finish_pass(self, pass_index: int) -> None:
        """Nothing to finalise."""

    def wants_another_pass(self) -> bool:
        """Always ``False``: single pass."""
        return False

    def result(self) -> list[int]:
        """The set ids currently held in the k slots."""
        return [set_id for set_id, _ in self._slots]

    # ------------------------------------------------------------------ #
    # extras
    # ------------------------------------------------------------------ #
    def current_coverage(self) -> int:
        """Coverage of the maintained solution according to its own bookkeeping."""
        return len(self._covered)

    def describe(self) -> dict[str, object]:
        """Diagnostics for reports."""
        return {
            "algorithm": self.name,
            "k": self.k,
            "swap_factor": self.swap_factor,
            "tracked_coverage": len(self._covered),
            "space_peak": self.space.peak,
        }
