"""Prior-work streaming baselines used in the Table 1 comparison."""

from repro.baselines.demaine import DemaineSetCover
from repro.baselines.emek_rosen import ThresholdPartialSetCover
from repro.baselines.harpeled import HarPeledSetCover
from repro.baselines.mcgregor_vu import McGregorVuKCover
from repro.baselines.saha_getoor import SahaGetoorKCover
from repro.baselines.sieve_streaming import SieveStreamingKCover

__all__ = [
    "DemaineSetCover",
    "ThresholdPartialSetCover",
    "HarPeledSetCover",
    "McGregorVuKCover",
    "SahaGetoorKCover",
    "SieveStreamingKCover",
]
