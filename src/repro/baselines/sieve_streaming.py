"""Sieve-Streaming (Badanidiyuru et al., KDD 2014) for k-cover.

The second streaming max-coverage baseline of Table 1 ("k-cover [9]"): a
single-pass **set-arrival** algorithm for monotone submodular maximisation
with a ``1/2 − ε`` guarantee using ``O~(n + m)`` space (for coverage it must
remember the union covered by each thresholded candidate solution, hence the
``m`` term).

Algorithm
---------
Maintain ``v_max``, the best singleton value seen so far.  For every
threshold ``v = (1+ε)^i`` within ``[v_max, 2·k·v_max]`` keep an independent
candidate solution; an arriving set is added to a candidate iff the candidate
still has room and the set's marginal gain is at least
``(v/2 − current) / (k − |candidate|)``.  The best candidate at the end of
the stream is returned.  Thresholds are instantiated lazily as ``v_max``
grows, exactly as in the original paper.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.streaming.batches import EventBatch
from repro.streaming.events import SetArrival
from repro.streaming.space import SpaceMeter
from repro.utils.validation import check_open_unit, check_positive_int

__all__ = ["SieveStreamingKCover"]


class _Candidate:
    """One thresholded candidate solution."""

    __slots__ = ("threshold", "selected", "covered")

    def __init__(self, threshold: float) -> None:
        self.threshold = threshold
        self.selected: list[int] = []
        self.covered: set[int] = set()


class SieveStreamingKCover:
    """Single-pass sieve-streaming k-cover (set-arrival, ½−ε approx)."""

    def __init__(self, k: int, epsilon: float = 0.1) -> None:
        check_positive_int(k, "k")
        check_open_unit(epsilon, "epsilon")
        self.name = "sieve-streaming"
        self.arrival_model = "set"
        self.k = k
        self.epsilon = epsilon
        self.space = SpaceMeter(unit="stored items")
        self._candidates: dict[int, _Candidate] = {}
        self._v_max = 0.0

    # ------------------------------------------------------------------ #
    # threshold management
    # ------------------------------------------------------------------ #
    def _active_indices(self) -> range:
        """Indices i with (1+ε)^i in [v_max, 2 k v_max]."""
        if self._v_max <= 0:
            return range(0)
        base = 1.0 + self.epsilon
        low = math.floor(math.log(self._v_max, base))
        high = math.ceil(math.log(2.0 * self.k * self._v_max, base))
        return range(low, high + 1)

    def _sync_candidates(self) -> None:
        """Create newly active candidates and drop obsolete ones."""
        active = set(self._active_indices())
        base = 1.0 + self.epsilon
        for index in list(self._candidates):
            if index not in active:
                dropped = self._candidates.pop(index)
                self.space.release(len(dropped.covered) + len(dropped.selected))
        for index in active:
            if index not in self._candidates:
                self._candidates[index] = _Candidate(threshold=base**index)

    # ------------------------------------------------------------------ #
    # StreamingAlgorithm protocol
    # ------------------------------------------------------------------ #
    def start_pass(self, pass_index: int) -> None:
        """Single-pass algorithm."""
        if pass_index > 0:  # pragma: no cover - defensive
            raise RuntimeError("SieveStreamingKCover is a single-pass algorithm")

    def process(self, event: SetArrival) -> None:
        """Offer one arriving set to every active thresholded candidate."""
        self._offer(event.set_id, event.elements)

    def process_batch(self, batch: EventBatch) -> None:
        """Offer a whole columnar set batch, set by set.

        Reads the batch's CSR columns directly (no per-event object
        construction); each set goes through the same offer logic as
        :meth:`process`, so batched and scalar runs are identical.
        """
        if batch.offsets is None:
            raise TypeError("SieveStreamingKCover consumes set batches, got an edge batch")
        # Every set must go through the scalar sieve offer (each offer can
        # update every threshold's slot state), so there is no vectorised
        # prefilter; the columns convert to Python once per batch.
        set_ids = batch.set_ids.tolist()  # repro-lint: disable=hot-path-hygiene -- every set reaches the scalar offer; one conversion per batch
        bounds = batch.offsets.tolist()  # repro-lint: disable=hot-path-hygiene -- every set reaches the scalar offer; one conversion per batch
        elements = batch.elements.tolist()  # repro-lint: disable=hot-path-hygiene -- every set reaches the scalar offer; one conversion per batch
        for index, set_id in enumerate(set_ids):
            self._offer(set_id, elements[bounds[index] : bounds[index + 1]])

    def _offer(self, set_id: int, elements: Iterable[int]) -> None:
        members = set(elements)
        singleton_value = float(len(members))
        if singleton_value > self._v_max:
            self._v_max = singleton_value
            self._sync_candidates()
        for candidate in self._candidates.values():
            if len(candidate.selected) >= self.k:
                continue
            gain = len(members - candidate.covered)
            remaining = self.k - len(candidate.selected)
            required = (candidate.threshold / 2.0 - len(candidate.covered)) / remaining
            if gain >= required and gain > 0:
                candidate.selected.append(set_id)
                new_elements = members - candidate.covered
                candidate.covered |= new_elements
                self.space.charge(len(new_elements) + 1)

    def finish_pass(self, pass_index: int) -> None:
        """Nothing to finalise."""

    def wants_another_pass(self) -> bool:
        """Always ``False``: single pass."""
        return False

    def result(self) -> list[int]:
        """The best candidate solution by its own covered-set bookkeeping."""
        if not self._candidates:
            return []
        best = max(self._candidates.values(), key=lambda c: len(c.covered))
        return list(best.selected)

    # ------------------------------------------------------------------ #
    # extras
    # ------------------------------------------------------------------ #
    def num_candidates(self) -> int:
        """Number of currently active thresholded candidates."""
        return len(self._candidates)

    def describe(self) -> dict[str, object]:
        """Diagnostics for reports."""
        return {
            "algorithm": self.name,
            "k": self.k,
            "epsilon": self.epsilon,
            "v_max": self._v_max,
            "candidates": len(self._candidates),
            "space_peak": self.space.peak,
        }
