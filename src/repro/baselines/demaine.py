"""Demaine et al. (DISC 2014)-style multi-pass streaming set cover.

Table 1's "Set cover [18]" row: a ``4r``-pass set-arrival algorithm with a
``4r · log m`` approximation using ``O~(n·m^{1/r} + m)`` space.  The paper's
Algorithm 6 improves this exponentially (approximation ``(1+ε) log m`` in
``p`` passes with comparable space), which the Table 1 benchmark measures.

Implementation note
-------------------
The essence of [18] is progressive threshold greedy: in phase ``j`` the
algorithm accepts, on sight, any arriving set whose marginal coverage of the
still-uncovered elements is at least ``m / c^j`` for a geometric schedule
``c = m^{1/r}``; after the ``r`` thresholded passes, a final pass covers each
remaining element with an arbitrary witness set.  The uncovered-element set
(``O(m)``) and the accepted solution are the only state carried across
passes.  Constants differ from the original (which interleaves extra passes
to estimate thresholds — hence their ``4r``); the pass/space/quality shape is
preserved and reported honestly by the benchmark harness.
"""

from __future__ import annotations

from repro.streaming.events import SetArrival
from repro.streaming.space import SpaceMeter
from repro.utils.validation import check_positive_int

__all__ = ["DemaineSetCover"]


class DemaineSetCover:
    """Multi-pass threshold streaming set cover (set-arrival)."""

    def __init__(self, num_elements_hint: int, rounds: int = 3) -> None:
        check_positive_int(num_elements_hint, "num_elements_hint")
        check_positive_int(rounds, "rounds")
        self.name = "demaine-threshold-setcover"
        self.arrival_model = "set"
        self.num_elements_hint = num_elements_hint
        self.rounds = rounds
        self.space = SpaceMeter(unit="stored items")

        self._uncovered_known: set[int] = set()
        self._covered: set[int] = set()
        self._selected: list[int] = []
        self._witness: dict[int, int] = {}
        self._pass_index = 0
        self._total_passes = rounds + 1  # r thresholded passes + final patch pass

    def _threshold(self, pass_index: int) -> float:
        """``m / (m^{1/r})^{j+1}`` for pass ``j`` (floored at 1)."""
        m = float(max(2, self.num_elements_hint))
        factor = m ** (1.0 / self.rounds)
        return max(1.0, m / (factor ** (pass_index + 1)))

    # ------------------------------------------------------------------ #
    # StreamingAlgorithm protocol
    # ------------------------------------------------------------------ #
    def start_pass(self, pass_index: int) -> None:
        """Record which pass (and hence which threshold) is running."""
        self._pass_index = pass_index

    def process(self, event: SetArrival) -> None:
        """Accept the set if it clears this pass's threshold; else remember witnesses."""
        members = set(event.elements)
        new_elements = members - self._uncovered_known - self._covered
        if new_elements:
            self._uncovered_known |= new_elements
            self.space.charge(len(new_elements))
        gain = members - self._covered
        if not gain:
            return
        final_pass = self._pass_index >= self._total_passes - 1
        if not final_pass:
            if len(gain) >= self._threshold(self._pass_index):
                self._accept(event.set_id, gain)
        else:
            # Final pass: any set still contributing gets accepted only if it
            # is the remembered witness; otherwise just remember a witness.
            for element in gain:
                if element not in self._witness:
                    self._witness[element] = event.set_id
                    self.space.charge(1)

    def _accept(self, set_id: int, gain: set[int]) -> None:
        self._selected.append(set_id)
        self._covered |= gain
        self._uncovered_known -= gain
        self.space.charge(1)

    def finish_pass(self, pass_index: int) -> None:
        """After the final pass, add witness sets until everything is covered."""
        if pass_index < self._total_passes - 1:
            return
        uncovered = self._uncovered_known - self._covered
        by_set: dict[int, set[int]] = {}
        for element in uncovered:
            witness = self._witness.get(element)
            if witness is not None:
                by_set.setdefault(witness, set()).add(element)
        for set_id, elements in sorted(by_set.items(), key=lambda kv: (-len(kv[1]), kv[0])):
            gain = elements - self._covered
            if gain:
                self._accept(set_id, gain)

    def wants_another_pass(self) -> bool:
        """Run ``rounds + 1`` passes in total."""
        return self._pass_index + 1 < self._total_passes

    def result(self) -> list[int]:
        """The accepted set ids."""
        return list(dict.fromkeys(self._selected))

    def describe(self) -> dict[str, object]:
        """Diagnostics for reports."""
        return {
            "algorithm": self.name,
            "rounds": self.rounds,
            "total_passes": self._total_passes,
            "selected": len(self._selected),
            "space_peak": self.space.peak,
        }
