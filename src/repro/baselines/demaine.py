"""Demaine et al. (DISC 2014)-style multi-pass streaming set cover.

Table 1's "Set cover [18]" row: a ``4r``-pass set-arrival algorithm with a
``4r · log m`` approximation using ``O~(n·m^{1/r} + m)`` space.  The paper's
Algorithm 6 improves this exponentially (approximation ``(1+ε) log m`` in
``p`` passes with comparable space), which the Table 1 benchmark measures.

Implementation note
-------------------
The essence of [18] is progressive threshold greedy: in phase ``j`` the
algorithm accepts, on sight, any arriving set whose marginal coverage of the
still-uncovered elements is at least ``m / c^j`` for a geometric schedule
``c = m^{1/r}``; after the ``r`` thresholded passes, a final pass covers each
remaining element with an arbitrary witness set.  The uncovered-element set
(``O(m)``) and the accepted solution are the only state carried across
passes.  Constants differ from the original (which interleaves extra passes
to estimate thresholds — hence their ``4r``); the pass/space/quality shape is
preserved and reported honestly by the benchmark harness.

Batched path
------------
``process_batch`` consumes columnar set batches (CSR layout) natively.  The
per-set threshold test is vectorised: a set's member count bounds its
marginal gain from above, so any set whose count misses this pass's
threshold can never be accepted — only the *candidate* sets (count ≥
threshold) go through the scalar accept logic.  Skipped sets still owe the
uncovered-universe bookkeeping, which runs as one whole-array pass per run
of consecutive skipped sets (between two candidates the covered set is
frozen, so the run's new elements are exactly what the scalar loop would
have recorded set by set).  Element status lives in a flag array (covered /
known / witnessed bits), shared with the scalar path, so batched and scalar
runs are byte-identical — solution, witnesses, and space accounting —
whatever the batch boundaries (property-tested across sizes {1, 7, 1024}).
"""

from __future__ import annotations

import numpy as np

from repro.streaming.batches import EventBatch
from repro.streaming.events import SetArrival
from repro.streaming.space import SpaceMeter
from repro.utils.validation import check_positive_int

__all__ = ["DemaineSetCover"]

#: Element-status bits shared by the scalar and the batched path.
_COVERED = np.uint8(1)
_KNOWN = np.uint8(2)
_WITNESSED = np.uint8(4)


class DemaineSetCover:
    """Multi-pass threshold streaming set cover (set-arrival)."""

    def __init__(self, num_elements_hint: int, rounds: int = 3) -> None:
        check_positive_int(num_elements_hint, "num_elements_hint")
        check_positive_int(rounds, "rounds")
        self.name = "demaine-threshold-setcover"
        self.arrival_model = "set"
        self.num_elements_hint = num_elements_hint
        self.rounds = rounds
        self.space = SpaceMeter(unit="stored items")

        self._uncovered_known: set[int] = set()
        self._covered: set[int] = set()
        self._selected: list[int] = []
        self._witness: dict[int, int] = {}
        self._pass_index = 0
        self._total_passes = rounds + 1  # r thresholded passes + final patch pass
        # Per-element status bits for the batched path's whole-array tests.
        # Dense flags are a *cache* over a bounded id range — the Python
        # sets/dict above stay authoritative — so an adversarial stream with
        # huge sparse element ids (they are not required to be dense) costs
        # the scalar fallback for those ids, never O(max id) memory.  The
        # cap leaves generous headroom over the hint; growth below it is
        # geometric.
        self._dense_limit = max(8 * max(1, num_elements_hint), 1 << 20)
        self._flags = np.zeros(max(1, num_elements_hint), dtype=np.uint8)

    def _threshold(self, pass_index: int) -> float:
        """``m / (m^{1/r})^{j+1}`` for pass ``j`` (floored at 1)."""
        m = float(max(2, self.num_elements_hint))
        factor = m ** (1.0 / self.rounds)
        return max(1.0, m / (factor ** (pass_index + 1)))

    # ------------------------------------------------------------------ #
    # element-status flags
    # ------------------------------------------------------------------ #
    def _ensure_flags(self, size: int) -> None:
        size = min(size, self._dense_limit)
        if size > len(self._flags):
            grown = np.zeros(
                min(max(size, 2 * len(self._flags)), self._dense_limit),
                dtype=np.uint8,
            )
            grown[: len(self._flags)] = self._flags
            self._flags = grown

    def _set_flag(self, elements: set[int] | list[int], bit: np.uint8) -> None:
        """Mirror a state change into the dense flag cache (in-range ids only).

        Filtered in Python *before* the array build: ids at or beyond the
        dense limit (including >= 2**63, which would overflow an int64
        conversion) never touch the cache — the authoritative sets carry
        them.
        """
        in_range = [e for e in elements if 0 <= e < self._dense_limit]
        if not in_range:
            return
        ids = np.fromiter(in_range, dtype=np.int64, count=len(in_range))
        self._ensure_flags(int(ids.max()) + 1)
        self._flags[ids] |= bit

    # ------------------------------------------------------------------ #
    # StreamingAlgorithm protocol
    # ------------------------------------------------------------------ #
    def start_pass(self, pass_index: int) -> None:
        """Record which pass (and hence which threshold) is running."""
        self._pass_index = pass_index

    def process(self, event: SetArrival) -> None:
        """Accept the set if it clears this pass's threshold; else remember witnesses."""
        members = set(event.elements)
        self._note_new_elements(members)
        gain = members - self._covered
        if not gain:
            return
        final_pass = self._pass_index >= self._total_passes - 1
        if not final_pass:
            if len(gain) >= self._threshold(self._pass_index):
                self._accept(event.set_id, gain)
        else:
            # Final pass: any set still contributing gets accepted only if it
            # is the remembered witness; otherwise just remember a witness.
            new_witnesses = [e for e in gain if e not in self._witness]
            for element in new_witnesses:
                self._witness[element] = event.set_id
            if new_witnesses:
                self._set_flag(new_witnesses, _WITNESSED)
                self.space.charge(len(new_witnesses))

    def process_batch(self, batch: EventBatch) -> None:
        """Consume a columnar set batch with the threshold test vectorised.

        Candidate sets (member count ≥ this pass's threshold — the count
        bounds the gain from above) run the exact scalar logic in arrival
        order; the runs of skipped sets in between contribute their
        uncovered-universe bookkeeping in one whole-array step per run,
        which is valid because the covered set cannot change inside a run.
        The final patch pass has no accepts at all, so it vectorises as one
        step for the whole batch.  State after a batch is byte-identical to
        the unrolled scalar feed.
        """
        if batch.offsets is None:
            raise TypeError("DemaineSetCover consumes set batches, got an edge batch")
        if len(batch) == 0:
            return
        bounds = batch.offsets
        if self._pass_index >= self._total_passes - 1:
            self._process_final_batch(batch)
            return
        counts = np.diff(bounds)
        threshold = self._threshold(self._pass_index)
        candidates = np.flatnonzero(counts >= threshold)
        elements = batch.elements
        previous = 0
        for index in candidates.tolist():
            if index > previous:
                self._observe_flat(elements[bounds[previous] : bounds[index]])
            members = set(elements[bounds[index] : bounds[index + 1]].tolist())
            self._note_new_elements(members)
            gain = members - self._covered
            if gain and len(gain) >= threshold:
                self._accept(int(batch.set_ids[index]), gain)
            previous = index + 1
        if previous < len(batch):
            self._observe_flat(elements[bounds[previous] : bounds[-1]])

    def _observe_flat(self, flat: np.ndarray) -> None:
        """Uncovered-universe bookkeeping for a run of skipped sets.

        Exactly what the scalar loop records for those sets: every element
        that is neither covered nor already known joins the known-uncovered
        universe (charged once, on first sight).  Ids inside the dense
        range go through the flag cache in one whole-array step; ids beyond
        it (legal, just unusual) take the authoritative set lookups.
        """
        if len(flat) == 0:
            return
        # Stay in uint64: an int64 cast would wrap ids >= 2**63 to negative
        # values, and negative fancy indices would alias real flag slots.
        in_range = flat < np.uint64(self._dense_limit)
        dense = flat[in_range]
        if len(dense):
            self._ensure_flags(int(dense.max()) + 1)
            fresh = dense[self._flags[dense] == 0]
            if len(fresh):
                new_ids = np.unique(fresh)
                self._flags[new_ids] |= _KNOWN
                self._uncovered_known.update(new_ids.tolist())
                self.space.charge(len(new_ids))
        if len(dense) != len(flat):
            fresh_sparse = {
                element
                for element in flat[~in_range].tolist()
                if element not in self._uncovered_known
                and element not in self._covered
            }
            if fresh_sparse:
                self._uncovered_known |= fresh_sparse
                self.space.charge(len(fresh_sparse))

    def _process_final_batch(self, batch: EventBatch) -> None:
        """The final patch pass over one batch, fully vectorised.

        The covered set is frozen during this pass (accepts only happen in
        :meth:`finish_pass`), so the whole batch reduces to two whole-array
        steps: the uncovered-universe update, and first-witness recording —
        the first arriving set owning an unwitnessed uncovered element wins,
        which is the scalar rule.
        """
        flat = batch.elements
        if len(flat) == 0:
            return
        self._observe_flat(flat)
        in_range = flat < np.uint64(self._dense_limit)
        owners_all = np.repeat(batch.set_ids, np.diff(batch.offsets))
        dense = flat[in_range]
        if len(dense):
            self._ensure_flags(int(dense.max()) + 1)
            # The KNOWN bits _observe_flat just set are not in this mask, so
            # reading the flags after it matches the scalar interleaving.
            eligible = (self._flags[dense] & (_COVERED | _WITNESSED)) == 0
            if eligible.any():
                owners = owners_all[in_range][eligible]
                needing = dense[eligible]
                new_witnesses, first_rows = np.unique(needing, return_index=True)
                for element, row in zip(new_witnesses.tolist(), first_rows.tolist()):
                    self._witness[element] = int(owners[row])
                self._flags[new_witnesses] |= _WITNESSED
                self.space.charge(len(new_witnesses))
        if len(dense) != len(flat):
            charged = 0
            for element, owner in zip(
                flat[~in_range].tolist(), owners_all[~in_range].tolist()
            ):
                if element not in self._covered and element not in self._witness:
                    self._witness[element] = int(owner)
                    charged += 1
            if charged:
                self.space.charge(charged)

    def _note_new_elements(self, members: set[int]) -> None:
        """Scalar uncovered-universe bookkeeping for one arriving set."""
        new_elements = members - self._uncovered_known - self._covered
        if new_elements:
            self._uncovered_known |= new_elements
            self._set_flag(new_elements, _KNOWN)
            self.space.charge(len(new_elements))

    def _accept(self, set_id: int, gain: set[int]) -> None:
        self._selected.append(set_id)
        self._covered |= gain
        self._uncovered_known -= gain
        self._set_flag(gain, _COVERED)
        self.space.charge(1)

    def finish_pass(self, pass_index: int) -> None:
        """After the final pass, add witness sets until everything is covered."""
        if pass_index < self._total_passes - 1:
            return
        uncovered = self._uncovered_known - self._covered
        by_set: dict[int, set[int]] = {}
        for element in uncovered:
            witness = self._witness.get(element)
            if witness is not None:
                by_set.setdefault(witness, set()).add(element)
        for set_id, elements in sorted(by_set.items(), key=lambda kv: (-len(kv[1]), kv[0])):
            gain = elements - self._covered
            if gain:
                self._accept(set_id, gain)

    def wants_another_pass(self) -> bool:
        """Run ``rounds + 1`` passes in total."""
        return self._pass_index + 1 < self._total_passes

    def result(self) -> list[int]:
        """The accepted set ids."""
        return list(dict.fromkeys(self._selected))

    def describe(self) -> dict[str, object]:
        """Diagnostics for reports."""
        return {
            "algorithm": self.name,
            "rounds": self.rounds,
            "total_passes": self._total_passes,
            "selected": len(self._selected),
            "space_peak": self.space.peak,
        }
