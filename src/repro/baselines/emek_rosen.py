"""Prior-work semi-streaming set cover with outliers (set-arrival, O~(m) space).

Table 1's "Set cover w. outliers [19, 13]" row refers to the Emek–Rosén and
Chakrabarti–Wirth line of work: ``p``-pass set-arrival algorithms using
``O~(m)`` space with approximation ``O(min(n^{1/(p+1)}, e^{-1/p}))`` — note
the space depends on the ground set and the ratio degrades as the number of
passes shrinks, both of which the paper's single-pass ``O~_λ(n)`` algorithm
improves on.

Implementation note
-------------------
We implement the progressive-thresholding scheme that underlies both works:
the algorithm keeps the set of still-uncovered elements (``O(m)`` space).  In
pass ``j`` (of ``p``) a set is accepted the moment its marginal coverage on
the uncovered elements is at least ``t_j``, where the thresholds ``t_j``
decrease geometrically from the largest possible gain down to the level at
which the allowed outlier mass is reached.  After the last pass, remaining
uncovered elements beyond the outlier budget are patched greedily from a
per-element witness set remembered during the final pass (also ``O(m)``).
The exact constants of [19]/[13] differ; the *shape* — multi-pass, ``O~(m)``
space, ratio degrading with fewer passes — is what the benchmark compares.
"""

from __future__ import annotations

import math

import numpy as np

from repro.streaming.batches import EventBatch
from repro.streaming.events import SetArrival
from repro.streaming.space import SpaceMeter
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["ThresholdPartialSetCover"]


class ThresholdPartialSetCover:
    """Multi-pass threshold-greedy set cover with outliers (set-arrival)."""

    def __init__(
        self,
        num_elements_hint: int,
        outlier_fraction: float,
        passes: int = 3,
    ) -> None:
        check_positive_int(num_elements_hint, "num_elements_hint")
        check_fraction(outlier_fraction, "outlier_fraction")
        check_positive_int(passes, "passes")
        self.name = "threshold-partial-cover"
        self.arrival_model = "set"
        self.num_elements_hint = num_elements_hint
        self.outlier_fraction = outlier_fraction
        self.passes = passes
        self.space = SpaceMeter(unit="stored items")

        self._universe: set[int] = set()
        self._covered: set[int] = set()
        self._selected: list[int] = []
        self._witness: dict[int, int] = {}
        self._pass_index = 0
        self._done = False

    # ------------------------------------------------------------------ #
    # thresholds
    # ------------------------------------------------------------------ #
    def _threshold(self, pass_index: int) -> float:
        """Geometrically decreasing acceptance threshold for each pass."""
        top = float(max(1, self.num_elements_hint))
        # Decrease from m down to 1 over `passes` steps.
        ratio = top ** (1.0 / max(1, self.passes))
        return max(1.0, top / (ratio ** (pass_index + 1)))

    def _allowed_outliers(self) -> int:
        universe = len(self._universe) if self._universe else self.num_elements_hint
        return int(math.floor(self.outlier_fraction * universe))

    # ------------------------------------------------------------------ #
    # StreamingAlgorithm protocol
    # ------------------------------------------------------------------ #
    def start_pass(self, pass_index: int) -> None:
        """Record the pass index used for the threshold schedule."""
        self._pass_index = pass_index

    def process(self, event: SetArrival) -> None:
        """Accept the arriving set if it clears the current pass's threshold."""
        self._process_members(event.set_id, event.elements)

    def _process_members(self, set_id: int, elements) -> None:
        """The exact per-set update, shared by the scalar and batched paths."""
        members = set(int(element) for element in elements)
        new_universe = members - self._universe
        if new_universe:
            self._universe |= new_universe
            self.space.charge(len(new_universe))
        gain = members - self._covered
        if not gain:
            return
        if len(gain) >= self._threshold(self._pass_index):
            self._selected.append(set_id)
            self._covered |= gain
            self.space.charge(1)
        elif self._pass_index == self.passes - 1:
            # Final pass: remember one witness set per still-uncovered element
            # so leftovers (beyond the outlier budget) can be patched.
            for element in gain:
                if element not in self._witness:
                    self._witness[element] = set_id
                    self.space.charge(1)

    def process_batch(self, batch: EventBatch) -> None:
        """Consume a CSR set batch with a vectorised threshold prefilter.

        ``|gain| <= member count``, so a set whose CSR run is shorter than
        the current pass's threshold can never be accepted: only the
        candidate sets that clear the count filter run the exact scalar
        accept logic (in stream order, since each acceptance shrinks later
        gains), and every run of skipped sets between candidates collapses
        into whole-array observation — universe growth plus, on the final
        pass, first-event witness recording.  Byte-identical to the scalar
        path for every batch size (property-tested).
        """
        if batch.offsets is None:
            raise TypeError(
                "ThresholdPartialSetCover is a set-arrival algorithm and "
                "cannot consume edge batches (offsets is None)"
            )
        offsets = batch.offsets
        counts = np.diff(offsets)
        threshold = self._threshold(self._pass_index)
        candidates = np.flatnonzero(counts >= threshold)
        num_events = len(batch.set_ids)
        cursor = 0
        for index in candidates.tolist():
            if index > cursor:
                self._observe_run(batch, cursor, index)
            start = int(offsets[index])
            stop = int(offsets[index + 1])
            self._process_members(
                int(batch.set_ids[index]), batch.elements[start:stop]
            )
            cursor = index + 1
        if cursor < num_events:
            self._observe_run(batch, cursor, num_events)

    def _observe_run(self, batch: EventBatch, lo: int, hi: int) -> None:
        """Observe a run of below-threshold sets without per-event loops.

        No acceptance can happen inside the run, so ``_covered`` is constant
        across it: universe growth reduces to one pass over the distinct
        elements of the run's member slice, and final-pass witness recording
        maps each new element to the set at its first occurrence — the same
        first-event-wins outcome the scalar loop produces.  Space is charged
        in run aggregates; the meter only ever grows here, so the recorded
        peak is unchanged.
        """
        offsets = batch.offsets
        start = int(offsets[lo])
        stop = int(offsets[hi])
        if start == stop:
            return
        segment = batch.elements[start:stop]
        distinct, first_position = np.unique(segment, return_index=True)
        fresh = [
            element
            for element in distinct.tolist()
            if element not in self._universe
        ]
        if fresh:
            self._universe.update(fresh)
            self.space.charge(len(fresh))
        if self._pass_index != self.passes - 1:
            return
        run_counts = np.diff(offsets[lo : hi + 1])
        owners = np.repeat(batch.set_ids[lo:hi], run_counts)
        witnessed = 0
        for element, position in zip(distinct.tolist(), first_position.tolist()):
            if element in self._covered or element in self._witness:
                continue
            self._witness[element] = int(owners[position])
            witnessed += 1
        if witnessed:
            self.space.charge(witnessed)

    def finish_pass(self, pass_index: int) -> None:
        """After the final pass, patch uncovered elements beyond the budget."""
        if pass_index < self.passes - 1:
            return
        uncovered = self._universe - self._covered
        allowed = self._allowed_outliers()
        if len(uncovered) > allowed:
            # Patch greedily by witness multiplicity.
            by_set: dict[int, set[int]] = {}
            for element in uncovered:
                witness = self._witness.get(element)
                if witness is not None:
                    by_set.setdefault(witness, set()).add(element)
            while len(uncovered) > allowed and by_set:
                best_set = max(by_set, key=lambda s: (len(by_set[s] & uncovered), -s))
                gain = by_set.pop(best_set) & uncovered
                if not gain:
                    continue
                self._selected.append(best_set)
                self._covered |= gain
                uncovered -= gain
        self._done = True

    def wants_another_pass(self) -> bool:
        """Continue until the configured number of passes has run."""
        return not self._done and self._pass_index + 1 < self.passes

    def result(self) -> list[int]:
        """The accepted set ids."""
        return list(dict.fromkeys(self._selected))

    # ------------------------------------------------------------------ #
    # extras
    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, object]:
        """Diagnostics for reports."""
        return {
            "algorithm": self.name,
            "passes": self.passes,
            "outlier_fraction": self.outlier_fraction,
            "selected": len(self._selected),
            "covered_tracked": len(self._covered),
            "space_peak": self.space.peak,
        }
