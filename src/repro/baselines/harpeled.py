"""Har-Peled et al. (PODS 2016)-style p-pass streaming set cover.

Table 1's "Set cover [25]" row: a ``p``-pass set-arrival algorithm achieving
``O(p · log m)`` approximation in ``O~(n·m^{O(1/p)} + m)`` space.  The paper
achieves ``(1+ε) log m`` in the same space and passes while also handling
edge arrivals — the benchmark quantifies the gap.

Implementation note
-------------------
Like :mod:`repro.baselines.demaine` this is progressive threshold greedy,
but with the threshold schedule tied to a doubling guess of the optimum
cover size ``k̂``: pass ``j`` accepts any arriving set that covers at least
``|U_j| / (2·k̂)`` uncovered elements, where ``U_j`` is the uncovered set at
the start of the pass.  Whenever a pass fails to shrink ``|U|`` by half the
guess ``k̂`` doubles — this is the standard way [25]'s analysis is realised
without an a-priori bound on the optimum.  A final pass patches remaining
elements with witness sets.
"""

from __future__ import annotations

import numpy as np

from repro.streaming.batches import EventBatch
from repro.streaming.events import SetArrival
from repro.streaming.space import SpaceMeter
from repro.utils.validation import check_positive_int

__all__ = ["HarPeledSetCover"]


class HarPeledSetCover:
    """p-pass guess-and-threshold streaming set cover (set-arrival)."""

    def __init__(self, num_elements_hint: int, passes: int = 4, *, initial_guess: int = 1) -> None:
        check_positive_int(num_elements_hint, "num_elements_hint")
        check_positive_int(passes, "passes")
        check_positive_int(initial_guess, "initial_guess")
        self.name = "har-peled-setcover"
        self.arrival_model = "set"
        self.num_elements_hint = num_elements_hint
        self.passes = passes
        self.space = SpaceMeter(unit="stored items")

        self._guess = initial_guess
        self._universe: set[int] = set()
        self._covered: set[int] = set()
        self._selected: list[int] = []
        self._witness: dict[int, int] = {}
        self._pass_index = 0
        self._uncovered_at_pass_start = 0

    # ------------------------------------------------------------------ #
    # StreamingAlgorithm protocol
    # ------------------------------------------------------------------ #
    def start_pass(self, pass_index: int) -> None:
        """Snapshot the uncovered count used for this pass's threshold."""
        self._pass_index = pass_index
        uncovered = len(self._universe - self._covered)
        self._uncovered_at_pass_start = uncovered if uncovered else self.num_elements_hint

    def _threshold(self) -> float:
        return max(1.0, self._uncovered_at_pass_start / (2.0 * self._guess))

    def process(self, event: SetArrival) -> None:
        """Accept arriving sets clearing the threshold; remember witnesses in the last pass."""
        self._process_members(event.set_id, event.elements)

    def _process_members(self, set_id: int, elements) -> None:
        """The exact per-set update, shared by the scalar and batched paths."""
        members = set(int(element) for element in elements)
        new_elements = members - self._universe
        if new_elements:
            self._universe |= new_elements
            self.space.charge(len(new_elements))
        gain = members - self._covered
        if not gain:
            return
        final_pass = self._pass_index >= self.passes - 1
        if not final_pass:
            if len(gain) >= self._threshold():
                self._selected.append(set_id)
                self._covered |= gain
                self.space.charge(1)
        else:
            for element in gain:
                if element not in self._witness:
                    self._witness[element] = set_id
                    self.space.charge(1)

    def process_batch(self, batch: EventBatch) -> None:
        """Consume a CSR set batch with a vectorised threshold prefilter.

        The acceptance threshold is fixed for the whole pass (``|U_j|`` is
        snapshotted at ``start_pass`` and the guess only doubles between
        passes), and ``|gain| <= member count``, so any set whose CSR run is
        shorter than the threshold can never be accepted: only the candidate
        sets clearing the count filter run the exact scalar accept logic (in
        stream order, since each acceptance shrinks later gains), and every
        run of skipped sets between candidates collapses into whole-array
        observation.  The final pass accepts nothing at all — the entire
        batch collapses into one observation run that grows the universe and
        records first-occurrence witnesses.  Byte-identical to the scalar
        path for every batch size (property-tested).
        """
        if batch.offsets is None:
            raise TypeError(
                "HarPeledSetCover is a set-arrival algorithm and cannot "
                "consume edge batches (offsets is None)"
            )
        num_events = len(batch.set_ids)
        if self._pass_index >= self.passes - 1:
            self._observe_run(batch, 0, num_events)
            return
        offsets = batch.offsets
        counts = np.diff(offsets)
        candidates = np.flatnonzero(counts >= self._threshold())
        cursor = 0
        for index in candidates.tolist():
            if index > cursor:
                self._observe_run(batch, cursor, index)
            start = int(offsets[index])
            stop = int(offsets[index + 1])
            self._process_members(
                int(batch.set_ids[index]), batch.elements[start:stop]
            )
            cursor = index + 1
        if cursor < num_events:
            self._observe_run(batch, cursor, num_events)

    def _observe_run(self, batch: EventBatch, lo: int, hi: int) -> None:
        """Observe a run of non-accepting sets without per-event loops.

        No acceptance happens inside the run, so ``_covered`` is constant
        across it: universe growth reduces to one pass over the distinct
        elements of the run's member slice, and final-pass witness recording
        maps each new element to the set at its first occurrence — the same
        first-event-wins outcome the scalar loop produces.  Space is charged
        in run aggregates; the meter only ever grows here, so the recorded
        peak is unchanged.
        """
        offsets = batch.offsets
        start = int(offsets[lo])
        stop = int(offsets[hi])
        if start == stop:
            return
        segment = batch.elements[start:stop]
        distinct, first_position = np.unique(segment, return_index=True)
        fresh = [
            element
            for element in distinct.tolist()
            if element not in self._universe
        ]
        if fresh:
            self._universe.update(fresh)
            self.space.charge(len(fresh))
        if self._pass_index < self.passes - 1:
            return
        run_counts = np.diff(offsets[lo : hi + 1])
        owners = np.repeat(batch.set_ids[lo:hi], run_counts)
        witnessed = 0
        for element, position in zip(distinct.tolist(), first_position.tolist()):
            if element in self._covered or element in self._witness:
                continue
            self._witness[element] = int(owners[position])
            witnessed += 1
        if witnessed:
            self.space.charge(witnessed)

    def finish_pass(self, pass_index: int) -> None:
        """Double the guess when progress stalls; patch leftovers after the last pass."""
        if pass_index < self.passes - 1:
            uncovered = len(self._universe - self._covered)
            if uncovered > self._uncovered_at_pass_start / 2.0:
                self._guess = min(self._guess * 2, max(1, len(self._universe)))
            return
        uncovered = self._universe - self._covered
        by_set: dict[int, set[int]] = {}
        for element in uncovered:
            witness = self._witness.get(element)
            if witness is not None:
                by_set.setdefault(witness, set()).add(element)
        for set_id, elements in sorted(by_set.items(), key=lambda kv: (-len(kv[1]), kv[0])):
            gain = elements - self._covered
            if gain:
                self._selected.append(set_id)
                self._covered |= gain
                self.space.charge(1)

    def wants_another_pass(self) -> bool:
        """Run exactly ``passes`` passes."""
        return self._pass_index + 1 < self.passes

    def result(self) -> list[int]:
        """The accepted set ids."""
        return list(dict.fromkeys(self._selected))

    def describe(self) -> dict[str, object]:
        """Diagnostics for reports."""
        return {
            "algorithm": self.name,
            "passes": self.passes,
            "final_guess": self._guess,
            "selected": len(self._selected),
            "space_peak": self.space.peak,
        }
