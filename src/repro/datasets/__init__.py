"""Synthetic workload generators and the dataset registry.

Named generators are registered in :mod:`repro.datasets.registry`
(:func:`register_dataset` / :func:`list_datasets`); the CLI's ``--generator``
choices and :meth:`repro.api.ProblemSpec.build_instance` resolve through it.
"""

from repro.datasets.adversarial import (
    disjointness_family,
    purification_family,
    uniform_sampling_trap,
)
from repro.datasets.graphs import (
    barabasi_albert_instance,
    dominating_set_instance,
    erdos_renyi_instance,
    watts_strogatz_instance,
)
from repro.datasets.random_instances import (
    planted_kcover_instance,
    planted_setcover_instance,
    uniform_random_instance,
    zipf_instance,
)
from repro.datasets.realworld_like import (
    blog_watch_instance,
    data_summarization_instance,
    labeled_blog_watch_system,
)
from repro.datasets.registry import (
    DatasetInfo,
    get_dataset,
    iter_datasets,
    list_datasets,
    register_dataset,
    unregister_dataset,
)

__all__ = [
    "DatasetInfo",
    "register_dataset",
    "unregister_dataset",
    "get_dataset",
    "list_datasets",
    "iter_datasets",
    "disjointness_family",
    "purification_family",
    "uniform_sampling_trap",
    "barabasi_albert_instance",
    "dominating_set_instance",
    "erdos_renyi_instance",
    "watts_strogatz_instance",
    "planted_kcover_instance",
    "planted_setcover_instance",
    "uniform_random_instance",
    "zipf_instance",
    "blog_watch_instance",
    "data_summarization_instance",
    "labeled_blog_watch_system",
]
