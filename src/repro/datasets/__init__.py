"""Synthetic workload generators."""

from repro.datasets.adversarial import (
    disjointness_family,
    purification_family,
    uniform_sampling_trap,
)
from repro.datasets.graphs import (
    barabasi_albert_instance,
    dominating_set_instance,
    erdos_renyi_instance,
    watts_strogatz_instance,
)
from repro.datasets.random_instances import (
    planted_kcover_instance,
    planted_setcover_instance,
    uniform_random_instance,
    zipf_instance,
)
from repro.datasets.realworld_like import (
    blog_watch_instance,
    data_summarization_instance,
    labeled_blog_watch_system,
)

__all__ = [
    "disjointness_family",
    "purification_family",
    "uniform_sampling_trap",
    "barabasi_albert_instance",
    "dominating_set_instance",
    "erdos_renyi_instance",
    "watts_strogatz_instance",
    "planted_kcover_instance",
    "planted_setcover_instance",
    "uniform_random_instance",
    "zipf_instance",
    "blog_watch_instance",
    "data_summarization_instance",
    "labeled_blog_watch_system",
]
