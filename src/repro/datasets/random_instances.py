"""Synthetic random coverage instances.

The paper's empirical evaluation lives in the companion paper on real data
sets; here we generate synthetic workloads that exercise the same regimes
(DESIGN.md §3 documents this substitution):

* :func:`uniform_random_instance` — every (set, element) membership present
  independently with probability ``density`` (Erdős–Rényi bipartite).
* :func:`zipf_instance` — element popularity follows a Zipf law, producing
  the heavy-tailed element degrees that make the degree cap of ``H'_p``
  matter.
* :func:`planted_kcover_instance` — ``k`` planted sets tile most of the
  ground set while the remaining sets are small and noisy, so the optimum is
  known by construction and approximation ratios can be measured exactly
  even at scales where exhaustive search is impossible.
* :func:`planted_setcover_instance` — a hidden partition of the ground set
  into ``cover_size`` sets plus noise sets, giving a known minimum cover.
"""

from __future__ import annotations

import numpy as np

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.instance import CoverageInstance, ProblemKind
from repro.errors import InvalidInstanceError
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_fraction, check_open_unit, check_positive_int

__all__ = [
    "uniform_random_instance",
    "zipf_instance",
    "planted_kcover_instance",
    "planted_setcover_instance",
]


def _ensure_no_isolated_elements(graph: BipartiteGraph, num_elements: int, rng) -> None:
    """Attach any isolated element to a random set (paper assumes none exist)."""
    for element in range(num_elements):
        if not graph.has_element(element):
            graph.add_edge(int(rng.integers(graph.num_sets)), element)


def uniform_random_instance(
    num_sets: int,
    num_elements: int,
    density: float = 0.05,
    *,
    k: int = 5,
    seed: int = 0,
) -> CoverageInstance:
    """Bipartite Erdős–Rényi instance: each membership present w.p. ``density``."""
    check_positive_int(num_sets, "num_sets")
    check_positive_int(num_elements, "num_elements")
    check_open_unit(density, "density")
    rng = spawn_rng(seed, "uniform-instance")
    graph = BipartiteGraph(num_sets)
    # Vectorised sampling of the adjacency matrix, row by row to bound memory.
    for set_id in range(num_sets):
        mask = rng.random(num_elements) < density
        for element in np.nonzero(mask)[0]:
            graph.add_edge(set_id, int(element))
    _ensure_no_isolated_elements(graph, num_elements, rng)
    return CoverageInstance(
        graph=graph,
        kind=ProblemKind.K_COVER,
        k=min(k, num_sets),
        metadata={"generator": "uniform", "density": density, "seed": seed},
    )


def zipf_instance(
    num_sets: int,
    num_elements: int,
    *,
    edges_per_set: int = 50,
    zipf_exponent: float = 1.2,
    k: int = 5,
    seed: int = 0,
) -> CoverageInstance:
    """Heavy-tailed instance: sets sample elements from a Zipf popularity law.

    A few elements are wildly popular (appearing in many sets — exactly the
    high-degree elements the ``H'_p`` degree cap truncates) while the tail is
    sparse.
    """
    check_positive_int(num_sets, "num_sets")
    check_positive_int(num_elements, "num_elements")
    check_positive_int(edges_per_set, "edges_per_set")
    if zipf_exponent <= 0:
        raise ValueError("zipf_exponent must be positive")
    rng = spawn_rng(seed, "zipf-instance")
    ranks = np.arange(1, num_elements + 1, dtype=float)
    weights = ranks ** (-zipf_exponent)
    weights /= weights.sum()
    graph = BipartiteGraph(num_sets)
    for set_id in range(num_sets):
        size = min(num_elements, max(1, int(rng.poisson(edges_per_set))))
        members = rng.choice(num_elements, size=size, replace=False, p=weights)
        for element in members:
            graph.add_edge(set_id, int(element))
    _ensure_no_isolated_elements(graph, num_elements, rng)
    return CoverageInstance(
        graph=graph,
        kind=ProblemKind.K_COVER,
        k=min(k, num_sets),
        metadata={
            "generator": "zipf",
            "edges_per_set": edges_per_set,
            "zipf_exponent": zipf_exponent,
            "seed": seed,
        },
    )


def planted_kcover_instance(
    num_sets: int,
    num_elements: int,
    k: int,
    *,
    planted_coverage: float = 0.9,
    noise_set_size: int = 20,
    overlap: float = 0.05,
    seed: int = 0,
) -> CoverageInstance:
    """Instance with ``k`` planted sets jointly covering ``planted_coverage·m``.

    The planted sets partition a ``planted_coverage`` fraction of the ground
    set (plus a small random ``overlap`` so they are not exactly disjoint);
    the other ``n − k`` sets are small uniform "noise" sets.  The planted
    family is therefore an (essentially) optimal k-cover with known value,
    enabling exact approximation-ratio measurements at any scale.
    """
    check_positive_int(num_sets, "num_sets")
    check_positive_int(num_elements, "num_elements")
    check_positive_int(k, "k")
    check_fraction(planted_coverage, "planted_coverage")
    check_fraction(overlap, "overlap")
    if k > num_sets:
        raise InvalidInstanceError("k cannot exceed the number of sets")
    rng = spawn_rng(seed, "planted-kcover")
    graph = BipartiteGraph(num_sets)
    covered_target = int(planted_coverage * num_elements)
    planted_elements = rng.permutation(num_elements)[:covered_target]
    shares = np.array_split(planted_elements, k)
    planted_ids = list(range(k))
    for set_id, share in zip(planted_ids, shares):
        for element in share:
            graph.add_edge(set_id, int(element))
        # Small overlap with the full planted region keeps the optimum known
        # (the union is unchanged) while making the sets non-disjoint.
        extra = rng.choice(planted_elements, size=max(1, int(overlap * len(share))), replace=False)
        for element in extra:
            graph.add_edge(set_id, int(element))
    for set_id in range(k, num_sets):
        size = max(1, int(rng.poisson(noise_set_size)))
        members = rng.choice(num_elements, size=min(size, num_elements), replace=False)
        for element in members:
            graph.add_edge(set_id, int(element))
    _ensure_no_isolated_elements(graph, num_elements, rng)
    planted_value = graph.coverage(planted_ids)
    return CoverageInstance(
        graph=graph,
        kind=ProblemKind.K_COVER,
        k=k,
        planted_solution=tuple(planted_ids),
        planted_value=planted_value,
        metadata={
            "generator": "planted_kcover",
            "planted_coverage": planted_coverage,
            "noise_set_size": noise_set_size,
            "seed": seed,
        },
    )


def planted_setcover_instance(
    num_sets: int,
    num_elements: int,
    cover_size: int,
    *,
    noise_set_size: int = 15,
    outlier_fraction: float = 0.0,
    seed: int = 0,
) -> CoverageInstance:
    """Instance whose minimum set cover has a known (planted) size.

    The ground set is partitioned into ``cover_size`` planted sets (so they
    form a cover of exactly that size); the remaining sets are small noise
    sets that can never beat the planted cover by more than a trivial amount.
    With ``outlier_fraction > 0`` the instance is posed as set cover with
    outliers.
    """
    check_positive_int(num_sets, "num_sets")
    check_positive_int(num_elements, "num_elements")
    check_positive_int(cover_size, "cover_size")
    check_fraction(outlier_fraction, "outlier_fraction")
    if cover_size > num_sets:
        raise InvalidInstanceError("cover_size cannot exceed the number of sets")
    rng = spawn_rng(seed, "planted-setcover")
    graph = BipartiteGraph(num_sets)
    permutation = rng.permutation(num_elements)
    shares = np.array_split(permutation, cover_size)
    planted_ids = list(range(cover_size))
    for set_id, share in zip(planted_ids, shares):
        for element in share:
            graph.add_edge(set_id, int(element))
    for set_id in range(cover_size, num_sets):
        size = max(1, int(rng.poisson(noise_set_size)))
        members = rng.choice(num_elements, size=min(size, num_elements), replace=False)
        for element in members:
            graph.add_edge(set_id, int(element))
    kind = ProblemKind.SET_COVER_OUTLIERS if outlier_fraction > 0 else ProblemKind.SET_COVER
    return CoverageInstance(
        graph=graph,
        kind=kind,
        k=cover_size,
        outlier_fraction=outlier_fraction,
        planted_solution=tuple(planted_ids),
        planted_value=graph.coverage(planted_ids),
        metadata={
            "generator": "planted_setcover",
            "cover_size": cover_size,
            "noise_set_size": noise_set_size,
            "seed": seed,
        },
    )
