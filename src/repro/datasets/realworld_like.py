"""Synthetic "real-world-like" workloads mirroring the paper's motivations.

Two scenarios from the introduction's application list are modelled:

* :func:`blog_watch_instance` — the multi-topic blog-watch application that
  motivated Saha & Getoor: blogs (sets) cover topics/stories (elements); a
  few hub blogs cover many stories, most blogs are niche, and stories follow
  a topical popularity law.  The k-cover question is "which k blogs should an
  analyst follow to see the most stories?".
* :func:`data_summarization_instance` — data summarisation / web-mining
  workload: documents (sets) cover the vocabulary terms or features
  (elements) they contain; selecting k documents maximising term coverage is
  a standard extractive-summarisation objective.

Both generators expose size knobs so the benches can sweep ``n`` and ``m``
independently (the space claims are about exactly that independence).
"""

from __future__ import annotations

import numpy as np

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.instance import CoverageInstance, ProblemKind
from repro.coverage.setsystem import SetSystem
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["blog_watch_instance", "data_summarization_instance", "labeled_blog_watch_system"]


def blog_watch_instance(
    num_blogs: int = 200,
    num_stories: int = 5000,
    *,
    hub_fraction: float = 0.05,
    hub_coverage: float = 0.08,
    niche_stories: int = 25,
    k: int = 10,
    seed: int = 0,
) -> CoverageInstance:
    """Blogs covering stories; a small fraction of hub blogs cover many stories."""
    check_positive_int(num_blogs, "num_blogs")
    check_positive_int(num_stories, "num_stories")
    check_fraction(hub_fraction, "hub_fraction")
    check_fraction(hub_coverage, "hub_coverage")
    check_positive_int(niche_stories, "niche_stories")
    rng = spawn_rng(seed, "blog-watch")
    graph = BipartiteGraph(num_blogs)
    num_hubs = max(1, int(hub_fraction * num_blogs))
    hub_size = max(1, int(hub_coverage * num_stories))
    # Story popularity: Zipf-ish weights so hubs overlap on the head.
    ranks = np.arange(1, num_stories + 1, dtype=float)
    weights = ranks**-1.1
    weights /= weights.sum()
    for blog in range(num_hubs):
        members = rng.choice(num_stories, size=hub_size, replace=False, p=weights)
        for story in members:
            graph.add_edge(blog, int(story))
    for blog in range(num_hubs, num_blogs):
        size = max(1, int(rng.poisson(niche_stories)))
        members = rng.choice(num_stories, size=min(size, num_stories), replace=False, p=weights)
        for story in members:
            graph.add_edge(blog, int(story))
    # No isolated stories (attach leftovers to random niche blogs).
    for story in range(num_stories):
        if not graph.has_element(story):
            graph.add_edge(int(rng.integers(num_blogs)), story)
    return CoverageInstance(
        graph=graph,
        kind=ProblemKind.K_COVER,
        k=min(k, num_blogs),
        metadata={
            "generator": "blog_watch",
            "num_hubs": num_hubs,
            "hub_size": hub_size,
            "seed": seed,
        },
    )


def labeled_blog_watch_system(
    num_blogs: int = 50, num_stories: int = 500, *, seed: int = 0
) -> SetSystem:
    """A small labelled blog-watch :class:`SetSystem` (used by the examples).

    Blog labels look like ``"blog_007"`` and story labels like
    ``"story_0123"`` so example output reads naturally.
    """
    instance = blog_watch_instance(num_blogs, num_stories, k=5, seed=seed)
    system = SetSystem()
    for set_id in instance.graph.set_ids():
        label = f"blog_{set_id:03d}"
        members = [f"story_{element:04d}" for element in sorted(instance.graph.elements_of(set_id))]
        system.add_set(label, members)
    return system


def data_summarization_instance(
    num_documents: int = 300,
    vocabulary: int = 8000,
    *,
    terms_per_document: int = 120,
    topic_count: int = 12,
    k: int = 15,
    seed: int = 0,
) -> CoverageInstance:
    """Documents covering vocabulary terms, with a latent topic structure.

    Each document draws a topic; its terms mix a topic-specific head (shared
    with same-topic documents) and a uniform tail (document-specific), so
    maximising term coverage rewards picking documents from *different*
    topics — the qualitative behaviour real summarisation corpora show.
    """
    check_positive_int(num_documents, "num_documents")
    check_positive_int(vocabulary, "vocabulary")
    check_positive_int(terms_per_document, "terms_per_document")
    check_positive_int(topic_count, "topic_count")
    rng = spawn_rng(seed, "data-summarization")
    graph = BipartiteGraph(num_documents)
    # Partition part of the vocabulary into per-topic header blocks.
    header_size = max(1, vocabulary // (2 * topic_count))
    for document in range(num_documents):
        topic = int(rng.integers(topic_count))
        header_start = topic * header_size
        header_terms = rng.choice(
            np.arange(header_start, header_start + header_size),
            size=min(header_size, terms_per_document // 2),
            replace=False,
        )
        tail_terms = rng.choice(
            vocabulary, size=max(1, terms_per_document // 2), replace=False
        )
        for term in np.concatenate([header_terms, tail_terms]):
            graph.add_edge(document, int(term))
    # The ground set is whatever terms actually occur (no isolated cleanup needed).
    return CoverageInstance(
        graph=graph,
        kind=ProblemKind.K_COVER,
        k=min(k, num_documents),
        metadata={
            "generator": "data_summarization",
            "topic_count": topic_count,
            "terms_per_document": terms_per_document,
            "seed": seed,
        },
    )
