"""Adversarial instance families used by the hardness experiments.

* :func:`disjointness_family` — the Appendix E reduction instances (two
  elements, ``n`` sets), balanced between intersecting and disjoint draws.
* :func:`purification_family` — Appendix A's gold/brass instances together
  with their reduction graphs.
* :func:`uniform_sampling_trap` — an instance on which naive *uniform*
  element sampling (without the paper's careful budgeting) badly
  misestimates coverage: one planted set covers a huge block of elements
  while many decoys each cover a few popular elements, so a sample that is
  too small ranks decoys above the planted set.
"""

from __future__ import annotations

from repro.core.lowerbound import DisjointnessInstance
from repro.core.oracle import purification_to_kcover_instance
from repro.core.purification import KPurificationInstance
from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.instance import CoverageInstance, ProblemKind
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_positive_int

__all__ = ["disjointness_family", "purification_family", "uniform_sampling_trap"]


def disjointness_family(
    num_sets: int, count: int, *, density: float = 0.1, seed: int = 0
) -> list[DisjointnessInstance]:
    """A balanced family of disjointness instances (half intersecting)."""
    check_positive_int(num_sets, "num_sets")
    check_positive_int(count, "count")
    instances = []
    for index in range(count):
        instances.append(
            DisjointnessInstance.random(
                num_sets,
                density=density,
                force_intersecting=(index % 2 == 0),
                seed=seed + index,
            )
        )
    return instances


def purification_family(
    num_items: int, num_gold: int, count: int, *, seed: int = 0
) -> list[tuple[KPurificationInstance, BipartiteGraph]]:
    """k-purification instances paired with their Theorem 1.3 reduction graphs."""
    check_positive_int(num_items, "num_items")
    check_positive_int(num_gold, "num_gold")
    check_positive_int(count, "count")
    family = []
    for index in range(count):
        instance = KPurificationInstance.random(num_items, num_gold, seed=seed + index)
        family.append((instance, purification_to_kcover_instance(instance)))
    return family


def uniform_sampling_trap(
    num_sets: int = 50,
    *,
    big_set_size: int = 2000,
    decoy_popular_elements: int = 10,
    decoy_extra: int = 5,
    k: int = 1,
    seed: int = 0,
) -> CoverageInstance:
    """An instance where small uniform element samples mis-rank the sets.

    Set 0 covers ``big_set_size`` exclusive elements.  Every other set covers
    the same tiny block of ``decoy_popular_elements`` shared elements plus a
    few exclusive ones — so each decoy's coverage is tiny, but under an
    aggressive uniform subsample the popular block survives while the big
    set's exclusive elements are mostly dropped, and the decoys look
    competitive.  The planted optimum for ``k = 1`` is set 0.
    """
    check_positive_int(num_sets, "num_sets")
    check_positive_int(big_set_size, "big_set_size")
    rng = spawn_rng(seed, "sampling-trap")
    graph = BipartiteGraph(num_sets)
    element = 0
    # The big planted set.
    for _ in range(big_set_size):
        graph.add_edge(0, element)
        element += 1
    # Popular shared block.
    popular = list(range(element, element + decoy_popular_elements))
    element += decoy_popular_elements
    for set_id in range(1, num_sets):
        for shared in popular:
            graph.add_edge(set_id, shared)
        extras = max(0, int(rng.poisson(decoy_extra)))
        for _ in range(extras):
            graph.add_edge(set_id, element)
            element += 1
    return CoverageInstance(
        graph=graph,
        kind=ProblemKind.K_COVER,
        k=k,
        planted_solution=(0,),
        metadata={"generator": "uniform_sampling_trap", "big_set_size": big_set_size, "seed": seed},
    )
