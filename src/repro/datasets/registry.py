"""Dataset registry: named workload generators behind one uniform signature.

The CLI's ``--generator`` choices, ``repro generate --list`` and
:meth:`repro.api.ProblemSpec.build_instance` all resolve names through this
table instead of hard-coding generator wiring.  Every registered builder
accepts the uniform CLI-facing signature

    ``build(num_sets, num_elements, *, k=10, density=0.05, seed=0, **kwargs)``

mapping those knobs onto whatever the underlying generator calls them
(e.g. ``num_blogs`` / ``num_stories`` for the blog-watch workload), with
``**kwargs`` passing through generator-specific options for programmatic
callers.  Dominating-set datasets are built from a graph on ``num_sets``
nodes, so their ground set equals their set family (``m = n``) and
``num_elements`` does not apply — their summaries say so, since the CLI
always passes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.coverage.instance import CoverageInstance
from repro.errors import UnknownDatasetError
from repro.utils.registry import NamedRegistry

__all__ = [
    "DatasetInfo",
    "register_dataset",
    "unregister_dataset",
    "get_dataset",
    "list_datasets",
    "iter_datasets",
]


@dataclass(frozen=True)
class DatasetInfo:
    """A registry entry: the builder plus a one-line summary."""

    name: str
    summary: str
    build: Callable[..., CoverageInstance]

    def describe(self) -> dict[str, str]:
        """Name and summary as a plain dict (for tables)."""
        return {"name": self.name, "summary": self.summary}


_REGISTRY: NamedRegistry[DatasetInfo] = NamedRegistry(
    "dataset", UnknownDatasetError, "repro.datasets.list_datasets()"
)


def register_dataset(
    name: str, *, summary: str = ""
) -> Callable[[Callable[..., CoverageInstance]], Callable[..., CoverageInstance]]:
    """Decorator registering a workload builder under ``name``."""

    def decorator(build: Callable[..., CoverageInstance]) -> Callable[..., CoverageInstance]:
        _REGISTRY.add(name, DatasetInfo(name=name, summary=summary, build=build))
        return build

    return decorator


def unregister_dataset(name: str) -> None:
    """Remove a registered dataset (mainly for tests and plugins)."""
    _REGISTRY.remove(name)


def get_dataset(name: str) -> DatasetInfo:
    """Look up a dataset, raising :class:`UnknownDatasetError` with hints."""
    return _REGISTRY.get(name)


def list_datasets() -> list[str]:
    """Sorted dataset names."""
    return _REGISTRY.names()


def iter_datasets() -> list[DatasetInfo]:
    """All registry entries, sorted by name."""
    return _REGISTRY.values()


# --------------------------------------------------------------------- #
# Built-in registrations (uniform CLI-facing signature).
# --------------------------------------------------------------------- #
def _register_builtins() -> None:
    from repro.datasets.graphs import (
        barabasi_albert_instance,
        erdos_renyi_instance,
        watts_strogatz_instance,
    )
    from repro.datasets.random_instances import (
        planted_kcover_instance,
        planted_setcover_instance,
        uniform_random_instance,
        zipf_instance,
    )
    from repro.datasets.realworld_like import (
        blog_watch_instance,
        data_summarization_instance,
    )

    @register_dataset(
        "planted_kcover",
        summary="k planted sets jointly cover ~90% of the ground set (known Opt_k)",
    )
    def _planted_kcover(num_sets, num_elements, *, k=10, density=0.05, seed=0, **kwargs):
        return planted_kcover_instance(num_sets, num_elements, k=k, seed=seed, **kwargs)

    @register_dataset(
        "planted_setcover",
        summary="ground set partitioned by a planted minimum cover of known size",
    )
    def _planted_setcover(num_sets, num_elements, *, k=10, density=0.05, seed=0, **kwargs):
        kwargs.setdefault("cover_size", max(2, k))
        return planted_setcover_instance(num_sets, num_elements, seed=seed, **kwargs)

    @register_dataset(
        "uniform",
        summary="bipartite Erdos-Renyi memberships (each edge present w.p. density)",
    )
    def _uniform(num_sets, num_elements, *, k=10, density=0.05, seed=0, **kwargs):
        return uniform_random_instance(
            num_sets, num_elements, density=density, k=k, seed=seed, **kwargs
        )

    @register_dataset(
        "zipf",
        summary="heavy-tailed element popularity (exercises the degree cap)",
    )
    def _zipf(num_sets, num_elements, *, k=10, density=0.05, seed=0, **kwargs):
        return zipf_instance(num_sets, num_elements, k=k, seed=seed, **kwargs)

    @register_dataset(
        "blog_watch",
        summary="blogs covering stories with a few hub blogs (Saha-Getoor scenario)",
    )
    def _blog_watch(num_sets, num_elements, *, k=10, density=0.05, seed=0, **kwargs):
        return blog_watch_instance(
            num_blogs=num_sets, num_stories=num_elements, k=k, seed=seed, **kwargs
        )

    @register_dataset(
        "data_summarization",
        summary="documents covering vocabulary terms with latent topics",
    )
    def _data_summarization(num_sets, num_elements, *, k=10, density=0.05, seed=0, **kwargs):
        return data_summarization_instance(
            num_documents=num_sets, vocabulary=num_elements, k=k, seed=seed, **kwargs
        )

    @register_dataset(
        "barabasi_albert",
        summary="dominating-set view of a preferential-attachment graph on num_sets nodes (m = n; num_elements unused)",
    )
    def _barabasi_albert(num_sets, num_elements, *, k=10, density=0.05, seed=0, **kwargs):
        return barabasi_albert_instance(num_sets, k=k, seed=seed, **kwargs)

    @register_dataset(
        "erdos_renyi",
        summary="dominating-set view of a G(num_sets, density) random graph (m = n; num_elements unused)",
    )
    def _erdos_renyi(num_sets, num_elements, *, k=10, density=0.05, seed=0, **kwargs):
        return erdos_renyi_instance(
            num_sets, edge_probability=density, k=k, seed=seed, **kwargs
        )

    @register_dataset(
        "watts_strogatz",
        summary="dominating-set view of a small-world graph on num_sets nodes (m = n; num_elements unused)",
    )
    def _watts_strogatz(num_sets, num_elements, *, k=10, density=0.05, seed=0, **kwargs):
        return watts_strogatz_instance(num_sets, k=k, seed=seed, **kwargs)


_register_builtins()
