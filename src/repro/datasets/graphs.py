"""Graph-derived coverage instances (dominating set / neighbourhood cover).

The introduction motivates coverage problems with web-graph and data-mining
applications; a standard way to obtain realistic set systems from graphs is
the *dominating set* view: every vertex ``v`` becomes a set whose members are
``{v} ∪ N(v)`` (its closed neighbourhood), and the ground set is the vertex
set.  k-cover then asks for ``k`` vertices whose neighbourhoods reach the
most vertices — influence-maximisation-lite — and set cover asks for a
dominating set.

Generators wrap the networkx random graph models (Barabási–Albert,
Erdős–Rényi, Watts–Strogatz) so the benchmarks can use web-like heavy-tailed
degree distributions without any external data.
"""

from __future__ import annotations

import networkx as nx

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.instance import CoverageInstance, ProblemKind
from repro.utils.rng import derive_seed
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "dominating_set_instance",
    "barabasi_albert_instance",
    "erdos_renyi_instance",
    "watts_strogatz_instance",
]


def dominating_set_instance(
    graph: nx.Graph,
    *,
    k: int = 5,
    kind: ProblemKind = ProblemKind.K_COVER,
    outlier_fraction: float = 0.0,
    metadata: dict | None = None,
) -> CoverageInstance:
    """Closed-neighbourhood set system of an arbitrary (undirected) graph."""
    check_positive_int(k, "k")
    check_fraction(outlier_fraction, "outlier_fraction")
    nodes = sorted(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    bipartite = BipartiteGraph(max(1, len(nodes)))
    for node in nodes:
        set_id = index[node]
        bipartite.add_edge(set_id, index[node])
        for neighbor in graph.neighbors(node):
            bipartite.add_edge(set_id, index[neighbor])
    return CoverageInstance(
        graph=bipartite,
        kind=kind,
        k=min(k, len(nodes)),
        outlier_fraction=outlier_fraction,
        metadata={"generator": "dominating_set", "nodes": len(nodes), **(metadata or {})},
    )


def barabasi_albert_instance(
    num_nodes: int, attachment: int = 3, *, k: int = 5, seed: int = 0, **kwargs
) -> CoverageInstance:
    """Dominating-set instance over a Barabási–Albert preferential-attachment graph.

    BA graphs have the heavy-tailed degree distribution typical of web and
    social graphs, so a few neighbourhood sets are huge — the regime in which
    the paper notes its sketch shines and core-set techniques fail.
    """
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(attachment, "attachment")
    graph = nx.barabasi_albert_graph(
        num_nodes, min(attachment, max(1, num_nodes - 1)), seed=derive_seed(seed, "ba-graph") % (2**32)
    )
    return dominating_set_instance(
        graph, k=k, metadata={"model": "barabasi_albert", "attachment": attachment, "seed": seed}, **kwargs
    )


def erdos_renyi_instance(
    num_nodes: int, edge_probability: float = 0.02, *, k: int = 5, seed: int = 0, **kwargs
) -> CoverageInstance:
    """Dominating-set instance over an Erdős–Rényi random graph."""
    check_positive_int(num_nodes, "num_nodes")
    check_fraction(edge_probability, "edge_probability")
    graph = nx.fast_gnp_random_graph(
        num_nodes, edge_probability, seed=derive_seed(seed, "er-graph") % (2**32)
    )
    return dominating_set_instance(
        graph,
        k=k,
        metadata={"model": "erdos_renyi", "edge_probability": edge_probability, "seed": seed},
        **kwargs,
    )


def watts_strogatz_instance(
    num_nodes: int,
    nearest_neighbors: int = 6,
    rewiring_probability: float = 0.1,
    *,
    k: int = 5,
    seed: int = 0,
    **kwargs,
) -> CoverageInstance:
    """Dominating-set instance over a Watts–Strogatz small-world graph."""
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(nearest_neighbors, "nearest_neighbors")
    check_fraction(rewiring_probability, "rewiring_probability")
    graph = nx.watts_strogatz_graph(
        num_nodes,
        min(nearest_neighbors, max(2, num_nodes - 1)),
        rewiring_probability,
        seed=derive_seed(seed, "ws-graph") % (2**32),
    )
    return dominating_set_instance(
        graph,
        k=k,
        metadata={
            "model": "watts_strogatz",
            "nearest_neighbors": nearest_neighbors,
            "rewiring_probability": rewiring_probability,
            "seed": seed,
        },
        **kwargs,
    )
