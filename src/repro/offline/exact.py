"""Exact (exponential-time) solvers for small coverage instances.

The streaming algorithms are approximate; to *measure* approximation ratios
(rather than merely bound them) the tests and several benchmarks need the
true optimum on small instances.  These solvers enumerate subsets with
branch-and-bound style pruning and are intended for ``n`` up to ~20 sets
(k-cover) and small cover sizes (set cover).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.coverage.bipartite import BipartiteGraph
from repro.errors import InfeasibleError
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "exact_k_cover",
    "exact_set_cover",
    "exact_partial_cover",
    "optimum_k_cover_value",
]


def exact_k_cover(graph: BipartiteGraph, k: int) -> tuple[list[int], int]:
    """Optimal k-cover by enumeration with simple pruning.

    Returns ``(set_ids, coverage)``.  Sets are pre-sorted by size and a
    running upper bound (current coverage + sum of the largest remaining set
    sizes) prunes hopeless branches, which keeps n≈20, k≈5 instant.
    """
    check_positive_int(k, "k")
    n = graph.num_sets
    k = min(k, n)
    members = [graph.elements_of(s) for s in range(n)]
    order = sorted(range(n), key=lambda s: -len(members[s]))
    sizes = [len(members[s]) for s in order]
    # suffix_best[i][j] = sum of the j largest set sizes among order[i:]
    best_solution: list[int] = []
    best_value = -1

    def upper_bound(start: int, slots: int, current: int) -> int:
        return current + sum(sizes[start : start + slots])

    def recurse(start: int, chosen: list[int], covered: set[int]) -> None:
        nonlocal best_solution, best_value
        if len(covered) > best_value:
            best_value = len(covered)
            best_solution = list(chosen)
        slots = k - len(chosen)
        if slots == 0 or start >= n:
            return
        if upper_bound(start, slots, len(covered)) <= best_value:
            return
        for index in range(start, n):
            set_id = order[index]
            gain = members[set_id] - covered
            if not gain and best_value >= len(covered):
                continue
            if upper_bound(index, slots, len(covered)) <= best_value:
                break
            chosen.append(set_id)
            recurse(index + 1, chosen, covered | gain)
            chosen.pop()

    recurse(0, [], set())
    return best_solution, max(best_value, 0)


def optimum_k_cover_value(graph: BipartiteGraph, k: int) -> int:
    """The optimal k-cover value ``Opt_k`` (convenience wrapper)."""
    return exact_k_cover(graph, k)[1]


def exact_set_cover(graph: BipartiteGraph, *, max_size: int | None = None) -> list[int]:
    """Smallest set cover by increasing-size enumeration.

    Searches covers of size 1, 2, ... up to ``max_size`` (default ``n``).
    Raises :class:`InfeasibleError` when no cover exists within the limit.
    Only candidate sets that contribute at least one element of the ground
    set are considered.
    """
    universe = set(graph.elements())
    if not universe:
        return []
    n = graph.num_sets
    members = [graph.elements_of(s) & universe for s in range(n)]
    candidates = [s for s in range(n) if members[s]]
    if set().union(*(members[s] for s in candidates)) != universe:
        raise InfeasibleError("the family does not cover the ground set")
    limit = n if max_size is None else min(max_size, n)
    for size in range(1, limit + 1):
        for combo in combinations(sorted(candidates, key=lambda s: -len(members[s])), size):
            covered: set[int] = set()
            for set_id in combo:
                covered |= members[set_id]
                if len(covered) == len(universe):
                    break
            if len(covered) == len(universe):
                return list(combo)
    raise InfeasibleError(f"no cover of size <= {limit} exists")


def exact_partial_cover(
    graph: BipartiteGraph, outlier_fraction: float, *, max_size: int | None = None
) -> list[int]:
    """Smallest family covering at least a ``1 − λ`` fraction of elements."""
    check_fraction(outlier_fraction, "outlier_fraction")
    total = graph.num_elements
    # Number of elements that must be covered (allow lam*m outliers).
    target = total - int(outlier_fraction * total + 1e-9)
    if target <= 0:
        return []
    n = graph.num_sets
    members = [graph.elements_of(s) for s in range(n)]
    limit = n if max_size is None else min(max_size, n)
    order = sorted(range(n), key=lambda s: -len(members[s]))
    for size in range(1, limit + 1):
        best: list[int] | None = None
        for combo in combinations(order, size):
            covered: set[int] = set()
            for set_id in combo:
                covered |= members[set_id]
            if len(covered) >= target:
                best = list(combo)
                break
        if best is not None:
            return best
    raise InfeasibleError(
        f"no family of size <= {limit} covers {target} of {total} elements"
    )
