"""Offline reference algorithms: greedy, exact, local search."""

from repro.offline.exact import (
    exact_k_cover,
    exact_partial_cover,
    exact_set_cover,
    optimum_k_cover_value,
)
from repro.offline.ilp import IlpResult, ilp_k_cover, ilp_partial_cover, ilp_set_cover
from repro.offline.greedy import (
    GreedyResult,
    greedy_k_cover,
    greedy_order,
    greedy_partial_cover,
    greedy_set_cover,
)
from repro.offline.local_search import LocalSearchResult, local_search_k_cover

__all__ = [
    "GreedyResult",
    "greedy_k_cover",
    "greedy_order",
    "greedy_partial_cover",
    "greedy_set_cover",
    "exact_k_cover",
    "exact_partial_cover",
    "exact_set_cover",
    "optimum_k_cover_value",
    "IlpResult",
    "ilp_k_cover",
    "ilp_partial_cover",
    "ilp_set_cover",
    "LocalSearchResult",
    "local_search_k_cover",
]
