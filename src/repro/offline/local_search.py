"""Swap local search for k-cover.

A simple non-streaming baseline: start from any size-``k`` solution and keep
applying single-swap improvements until none exists.  Local search gives a
``1/2`` guarantee for maximum coverage and, more usefully here, provides an
independent reference point for the benchmark tables (it frequently matches
greedy on benign instances and differs on adversarial ones).

Passing ``kernel=`` (a :class:`repro.coverage.bitset.BitsetCoverage` snapshot
of the same graph) evaluates every base-coverage and candidate-gain query on
packed bit rows: one vectorised :meth:`gains_for` call scores all outside
candidates of a position at once, picking the same first-improving swap the
scalar loop would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.coverage.bipartite import BipartiteGraph
from repro.offline.greedy import greedy_k_cover
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a hard import
    from repro.coverage.bitset import BitsetCoverage

__all__ = ["LocalSearchResult", "local_search_k_cover"]


@dataclass
class LocalSearchResult:
    """Outcome of a local-search run."""

    selected: list[int]
    coverage: int
    iterations: int
    improved_from: int


def _coverage(graph: BipartiteGraph, solution: Iterable[int]) -> int:
    return graph.coverage(solution)


def local_search_k_cover(
    graph: BipartiteGraph,
    k: int,
    *,
    initial: Sequence[int] | None = None,
    seed: int = 0,
    max_iterations: int = 10_000,
    start_from_greedy: bool = False,
    kernel: "BitsetCoverage | None" = None,
) -> LocalSearchResult:
    """Single-swap local search for k-cover.

    Parameters
    ----------
    graph:
        The instance to optimise on.
    k:
        Solution size.
    initial:
        Optional starting solution; defaults to a random size-``k`` family
        (or the greedy solution when ``start_from_greedy`` is true).
    seed:
        Seed for the random initial solution.
    max_iterations:
        Hard cap on the number of improving swaps applied.
    kernel:
        Optional packed-bitset snapshot of ``graph``; swap evaluation then
        runs vectorised on its bit rows.
    """
    check_positive_int(k, "k")
    n = graph.num_sets
    k = min(k, n)
    if initial is not None:
        current = list(dict.fromkeys(int(s) for s in initial))[:k]
    elif start_from_greedy:
        current = greedy_k_cover(graph, k, kernel=kernel).selected
    else:
        rng = spawn_rng(seed, "local-search-init")
        current = list(rng.choice(n, size=k, replace=False))
    # Pad with arbitrary unused sets if the initial solution is short.
    unused = [s for s in range(n) if s not in set(current)]
    while len(current) < k and unused:
        current.append(unused.pop())

    start_value = kernel.coverage(current) if kernel is not None else _coverage(graph, current)
    value = start_value
    iterations = 0
    improved = True
    while improved and iterations < max_iterations:
        improved = False
        current_set = set(current)
        outside = [s for s in range(n) if s not in current_set]
        for position, removed in enumerate(list(current)):
            base = set(current) - {removed}
            if kernel is not None:
                base_bits = kernel.union_bits(np.fromiter(base, dtype=np.intp, count=len(base)))
                base_value = int(kernel.backend.popcount(base_bits, None))
                candidates = np.asarray(outside, dtype=np.intp)
                gains = kernel.gains_for(candidates, base_bits)
                improving = np.flatnonzero(base_value + gains > value)
                if improving.size:
                    index = int(improving[0])
                    current[position] = outside[index]
                    value = base_value + int(gains[index])
                    iterations += 1
                    improved = True
            else:
                base_covered = graph.neighbors(base)
                base_value = len(base_covered)
                for candidate in outside:
                    gain = len(graph.elements_of(candidate) - base_covered)
                    if base_value + gain > value:
                        current[position] = candidate
                        value = base_value + gain
                        iterations += 1
                        improved = True
                        break
            if improved:
                break
    return LocalSearchResult(
        selected=current,
        coverage=value,
        iterations=iterations,
        improved_from=start_value,
    )
