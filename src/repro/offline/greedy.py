"""Offline greedy algorithms for coverage problems.

These are the classical algorithms the paper composes with its sketch:

* :func:`greedy_k_cover` — the ``1 − 1/e`` greedy for maximum coverage
  (Nemhauser–Wolsey–Fisher), implemented lazily with a max-heap so each set's
  marginal gain is re-evaluated only when it might be the best.
* :func:`greedy_set_cover` — the ``ln m`` greedy for set cover.
* :func:`greedy_partial_cover` — greedy until a ``1 − λ`` fraction of
  elements is covered (the paper's ``Greedy(k log(1/λ), G)`` covering at
  least ``(1 − λ) Opt_k``).

All functions operate directly on a :class:`BipartiteGraph` — the same code
path is used whether the graph is a full instance or one of the paper's
sketches (that composability is precisely Theorem 2.7's point).  Every entry
point also accepts ``kernel=``, a :class:`repro.coverage.bitset.BitsetCoverage`
snapshot of the same graph: the selection loop then runs on the kernel's
packed bit rows (vectorised subset-gain re-evaluation under the same lazy
max-heap policy), which is substantially faster on dense instances while
achieving the same coverage up to tie-breaking.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.coverage.bipartite import BipartiteGraph
from repro.errors import InfeasibleError
from repro.utils.validation import check_fraction, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a hard import
    from repro.coverage.bitset import BitsetCoverage

__all__ = [
    "GreedyResult",
    "greedy_k_cover",
    "greedy_set_cover",
    "greedy_partial_cover",
    "greedy_order",
]


@dataclass
class GreedyResult:
    """Outcome of a greedy run.

    Attributes
    ----------
    selected:
        Chosen set ids, in selection order.
    coverage:
        Number of elements covered on the graph the greedy ran on.
    gains:
        The marginal gain realised at each selection step.
    evaluations:
        Number of marginal-gain evaluations performed (a proxy for time).
    """

    selected: list[int]
    coverage: int
    gains: list[int] = field(default_factory=list)
    evaluations: int = 0

    @property
    def size(self) -> int:
        """Number of selected sets."""
        return len(self.selected)


def _kernel_greedy(
    kernel: "BitsetCoverage",
    *,
    max_sets: int | None,
    target_coverage: int | None,
    forbidden: frozenset[int] = frozenset(),
) -> GreedyResult:
    """Run the greedy loop on a packed-bitset kernel instead of the graph."""
    selected, coverage, gains, evaluations = kernel.greedy(
        max_sets=max_sets, target_coverage=target_coverage, forbidden=forbidden
    )
    return GreedyResult(
        selected=selected, coverage=coverage, gains=gains, evaluations=evaluations
    )


def _lazy_greedy(
    graph: BipartiteGraph,
    *,
    max_sets: int | None,
    target_coverage: int | None,
    forbidden: frozenset[int] = frozenset(),
) -> GreedyResult:
    """Core lazy-greedy loop shared by the public greedy entry points.

    Runs until either ``max_sets`` sets are chosen, ``target_coverage``
    elements are covered, or no remaining set has positive marginal gain.
    """
    covered: set[int] = set()
    selected: list[int] = []
    gains: list[int] = []
    evaluations = 0

    # Max-heap of (-cached_gain, set_id, version). Python's heapq is a
    # min-heap, hence the negation. ``version`` is the number of selections
    # made when the gain was computed; a stale entry is re-evaluated lazily.
    # Only *fresh* tops are ever selected: a refreshed entry always goes back
    # through the heap, so ties resolve to the smallest set id among the
    # maximal-gain candidates — exactly the argmax tie-break of the eager
    # and kernel (BitsetCoverage) greedy paths, keeping the achieved
    # selection independent of which implementation evaluates it.
    heap: list[tuple[int, int, int]] = []
    for set_id in graph.set_ids():
        if set_id in forbidden:
            continue
        gain = graph.set_degree(set_id)
        evaluations += 1
        heap.append((-gain, set_id, 0))
    heapq.heapify(heap)

    def done() -> bool:
        if max_sets is not None and len(selected) >= max_sets:
            return True
        if target_coverage is not None and len(covered) >= target_coverage:
            return True
        return False

    while heap and not done():
        neg_gain, set_id, version = heapq.heappop(heap)
        if version != len(selected):
            gain = len(graph.elements_of(set_id) - covered)
            evaluations += 1
            heapq.heappush(heap, (-gain, set_id, len(selected)))
            continue
        gain = -neg_gain
        if gain <= 0:
            break
        selected.append(set_id)
        gains.append(gain)
        covered |= graph.elements_of(set_id)

    return GreedyResult(
        selected=selected, coverage=len(covered), gains=gains, evaluations=evaluations
    )


def greedy_k_cover(
    graph: BipartiteGraph,
    k: int,
    *,
    forbidden: Iterable[int] = (),
    kernel: "BitsetCoverage | None" = None,
) -> GreedyResult:
    """The ``1 − 1/e`` greedy for k-cover (``Greedy(k, G)`` in the paper).

    Parameters
    ----------
    graph:
        The instance (or sketch) to maximise coverage on.
    k:
        Number of sets to pick.  Fewer may be returned if coverage saturates.
    forbidden:
        Set ids the greedy is not allowed to pick (used by tests and by
        residual constructions).
    kernel:
        Optional packed-bitset snapshot of ``graph``; when given the
        selection runs on its vectorised lazy path (same coverage up to
        tie-breaking, much faster on dense instances).
    """
    check_positive_int(k, "k")
    if kernel is not None:
        return _kernel_greedy(
            kernel, max_sets=k, target_coverage=None, forbidden=frozenset(forbidden)
        )
    return _lazy_greedy(
        graph, max_sets=k, target_coverage=None, forbidden=frozenset(forbidden)
    )


def greedy_set_cover(
    graph: BipartiteGraph,
    *,
    allow_partial: bool = False,
    forbidden: Iterable[int] = (),
    kernel: "BitsetCoverage | None" = None,
) -> GreedyResult:
    """The ``ln m`` greedy for set cover.

    Raises :class:`InfeasibleError` when the family does not cover the ground
    set, unless ``allow_partial`` is true (then the maximal achievable
    coverage is returned).  ``forbidden`` excludes set ids from selection —
    with a nonempty exclusion the remaining family may no longer cover the
    ground set, so pair it with ``allow_partial`` when that is acceptable.
    """
    blocked = frozenset(forbidden)
    if kernel is not None:
        result = _kernel_greedy(
            kernel, max_sets=None, target_coverage=graph.num_elements, forbidden=blocked
        )
    else:
        result = _lazy_greedy(
            graph, max_sets=None, target_coverage=graph.num_elements, forbidden=blocked
        )
    if result.coverage < graph.num_elements and not allow_partial:
        raise InfeasibleError(
            f"the family covers only {result.coverage} of {graph.num_elements} elements"
        )
    return result


def greedy_partial_cover(
    graph: BipartiteGraph,
    target_fraction: float,
    *,
    forbidden: Iterable[int] = (),
    kernel: "BitsetCoverage | None" = None,
) -> GreedyResult:
    """Greedy until at least ``target_fraction`` of the elements are covered.

    Used for set cover with outliers: covering a ``1 − λ`` fraction.
    The target is rounded up to a whole number of elements.
    """
    check_fraction(target_fraction, "target_fraction")
    target = math.ceil(target_fraction * graph.num_elements - 1e-9)
    target = min(graph.num_elements, max(0, target))
    blocked = frozenset(forbidden)
    if kernel is not None:
        result = _kernel_greedy(
            kernel, max_sets=None, target_coverage=target, forbidden=blocked
        )
    else:
        result = _lazy_greedy(
            graph, max_sets=None, target_coverage=target, forbidden=blocked
        )
    if result.coverage < target:
        raise InfeasibleError(
            f"cannot cover {target} elements; maximum achievable is {result.coverage}"
        )
    return result


def greedy_order(graph: BipartiteGraph, *, kernel: "BitsetCoverage | None" = None) -> list[int]:
    """The full greedy selection order (all sets with positive gain)."""
    if kernel is not None:
        return _kernel_greedy(kernel, max_sets=None, target_coverage=None).selected
    return _lazy_greedy(graph, max_sets=None, target_coverage=None).selected
