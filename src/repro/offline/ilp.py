"""Integer-programming reference solvers (scipy.optimize.milp).

The branch-and-bound solvers in :mod:`repro.offline.exact` enumerate subsets
and are limited to ~20 sets.  For medium instances (hundreds of sets, a few
thousand elements) the standard ILP formulations solved with HiGHS through
:func:`scipy.optimize.milp` provide exact references:

* **Set cover**: minimise ``Σ x_S`` subject to ``Σ_{S ∋ e} x_S ≥ 1`` for every
  element ``e``, ``x_S ∈ {0, 1}``.
* **k-cover**: maximise ``Σ y_e`` subject to ``y_e ≤ Σ_{S ∋ e} x_S``,
  ``Σ x_S ≤ k``, ``x_S ∈ {0, 1}``, ``y_e ∈ [0, 1]`` (the ``y`` variables are
  automatically integral at an optimum).
* **Partial cover** (set cover with λ outliers): minimise ``Σ x_S`` subject to
  ``Σ y_e ≥ (1 − λ)·m`` and the k-cover linking constraints.

These are references for tests and benchmarks, not streaming algorithms; they
see the whole instance at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.coverage.bipartite import BipartiteGraph
from repro.errors import InfeasibleError
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["IlpResult", "ilp_set_cover", "ilp_k_cover", "ilp_partial_cover"]


@dataclass
class IlpResult:
    """Outcome of an ILP reference solve."""

    selected: list[int]
    objective: float
    status: str
    optimal: bool


def _element_index(graph: BipartiteGraph) -> dict[int, int]:
    return {element: index for index, element in enumerate(sorted(graph.elements()))}


def _incidence(graph: BipartiteGraph, element_index: dict[int, int]) -> sparse.csr_matrix:
    """Sparse element x set incidence matrix A with A[e, S] = 1 iff e ∈ S."""
    rows, cols = [], []
    for set_id in graph.set_ids():
        for element in graph.elements_of(set_id):
            rows.append(element_index[element])
            cols.append(set_id)
    data = np.ones(len(rows))
    return sparse.csr_matrix(
        (data, (rows, cols)), shape=(len(element_index), graph.num_sets)
    )


def ilp_set_cover(graph: BipartiteGraph, *, time_limit: float | None = None) -> IlpResult:
    """Exact minimum set cover via MILP."""
    element_index = _element_index(graph)
    if not element_index:
        return IlpResult(selected=[], objective=0.0, status="empty", optimal=True)
    matrix = _incidence(graph, element_index)
    n = graph.num_sets
    constraints = LinearConstraint(matrix, lb=np.ones(matrix.shape[0]), ub=np.inf)
    result = milp(
        c=np.ones(n),
        constraints=[constraints],
        integrality=np.ones(n),
        bounds=Bounds(0, 1),
        options={"time_limit": time_limit} if time_limit else None,
    )
    if result.x is None:
        raise InfeasibleError(f"set cover ILP failed: {result.message}")
    selected = [int(i) for i in np.flatnonzero(np.round(result.x) > 0.5)]
    return IlpResult(
        selected=selected,
        objective=float(len(selected)),
        status=result.message,
        optimal=bool(result.success),
    )


def _kcover_model(
    graph: BipartiteGraph, k: int, element_index: dict[int, int]
) -> tuple[np.ndarray, list[LinearConstraint], np.ndarray, Bounds]:
    """Shared variables/constraints for the k-cover / partial-cover models.

    Variables are ``[x_0 .. x_{n-1}, y_0 .. y_{m'-1}]``.
    """
    n = graph.num_sets
    m = len(element_index)
    matrix = _incidence(graph, element_index)
    # Linking: y_e - Σ_{S ∋ e} x_S <= 0.
    link = sparse.hstack([-matrix, sparse.eye(m, format="csr")], format="csr")
    link_constraint = LinearConstraint(link, lb=-np.inf, ub=np.zeros(m))
    # Cardinality: Σ x_S <= k.
    cardinality = sparse.hstack(
        [sparse.csr_matrix(np.ones((1, n))), sparse.csr_matrix((1, m))], format="csr"
    )
    cardinality_constraint = LinearConstraint(cardinality, lb=-np.inf, ub=float(k))
    integrality = np.concatenate([np.ones(n), np.zeros(m)])
    bounds = Bounds(np.zeros(n + m), np.ones(n + m))
    objective = np.concatenate([np.zeros(n), -np.ones(m)])  # maximise Σ y_e
    return objective, [link_constraint, cardinality_constraint], integrality, bounds


def ilp_k_cover(
    graph: BipartiteGraph, k: int, *, time_limit: float | None = None
) -> IlpResult:
    """Exact maximum k-cover via MILP (objective = covered elements)."""
    check_positive_int(k, "k")
    element_index = _element_index(graph)
    if not element_index:
        return IlpResult(selected=[], objective=0.0, status="empty", optimal=True)
    objective, constraints, integrality, bounds = _kcover_model(graph, k, element_index)
    result = milp(
        c=objective,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options={"time_limit": time_limit} if time_limit else None,
    )
    if result.x is None:
        raise InfeasibleError(f"k-cover ILP failed: {result.message}")
    n = graph.num_sets
    selected = [int(i) for i in np.flatnonzero(np.round(result.x[:n]) > 0.5)][:k]
    coverage = graph.coverage(selected)
    return IlpResult(
        selected=selected,
        objective=float(coverage),
        status=result.message,
        optimal=bool(result.success),
    )


def ilp_partial_cover(
    graph: BipartiteGraph,
    outlier_fraction: float,
    *,
    time_limit: float | None = None,
) -> IlpResult:
    """Exact minimum partial cover (cover at least a ``1 − λ`` fraction)."""
    check_fraction(outlier_fraction, "outlier_fraction")
    element_index = _element_index(graph)
    m = len(element_index)
    if m == 0:
        return IlpResult(selected=[], objective=0.0, status="empty", optimal=True)
    target = float(np.ceil((1.0 - outlier_fraction) * m - 1e-9))
    if target <= 0:
        return IlpResult(selected=[], objective=0.0, status="trivial", optimal=True)
    n = graph.num_sets
    matrix = _incidence(graph, element_index)
    link = sparse.hstack([-matrix, sparse.eye(m, format="csr")], format="csr")
    link_constraint = LinearConstraint(link, lb=-np.inf, ub=np.zeros(m))
    coverage_row = sparse.hstack(
        [sparse.csr_matrix((1, n)), sparse.csr_matrix(np.ones((1, m)))], format="csr"
    )
    coverage_constraint = LinearConstraint(coverage_row, lb=target, ub=np.inf)
    integrality = np.concatenate([np.ones(n), np.zeros(m)])
    bounds = Bounds(np.zeros(n + m), np.ones(n + m))
    objective = np.concatenate([np.ones(n), np.zeros(m)])  # minimise Σ x_S
    result = milp(
        c=objective,
        constraints=[link_constraint, coverage_constraint],
        integrality=integrality,
        bounds=bounds,
        options={"time_limit": time_limit} if time_limit else None,
    )
    if result.x is None:
        raise InfeasibleError(f"partial cover ILP failed: {result.message}")
    selected = [int(i) for i in np.flatnonzero(np.round(result.x[:n]) > 0.5)]
    return IlpResult(
        selected=selected,
        objective=float(len(selected)),
        status=result.message,
        optimal=bool(result.success),
    )
