"""The coverage function ``C(S) = |∪_{U ∈ S} U|`` and related helpers.

Besides evaluating coverage and marginal gains, the class keeps a query
counter so experiments that reason about oracle access (Theorem 1.3 /
Appendix A) can measure how many evaluations an algorithm performs.
The module also provides sampled checks of monotonicity and submodularity,
used by the property-based tests: coverage functions are the canonical
example of a monotone submodular function and the sketch must preserve that
structure.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.coverage.bipartite import BipartiteGraph

__all__ = ["CoverageFunction"]


class CoverageFunction:
    """Callable wrapper around a graph's coverage function.

    Parameters
    ----------
    graph:
        The bipartite membership graph.
    normalize:
        When ``True`` the function returns the covered *fraction* of the
        graph's elements instead of the absolute count.
    """

    def __init__(self, graph: BipartiteGraph, *, normalize: bool = False) -> None:
        self._graph = graph
        self._normalize = normalize
        self._queries = 0

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> BipartiteGraph:
        """The underlying bipartite graph."""
        return self._graph

    @property
    def query_count(self) -> int:
        """Number of coverage evaluations performed so far."""
        return self._queries

    def reset_query_count(self) -> None:
        """Reset the evaluation counter."""
        self._queries = 0

    def __call__(self, set_ids: Iterable[int]) -> float:
        """Evaluate ``C(S)`` (or the covered fraction when normalising)."""
        self._queries += 1
        value = self._graph.coverage(set_ids)
        if self._normalize:
            total = self._graph.num_elements
            return value / total if total else 1.0
        return float(value)

    def covered(self, set_ids: Iterable[int]) -> set[int]:
        """The set of covered elements ``Γ(G, S)``."""
        self._queries += 1
        return self._graph.neighbors(set_ids)

    def marginal_gain(self, current: Iterable[int], candidate: int) -> float:
        """``C(current ∪ {candidate}) − C(current)``."""
        current = set(current)
        covered = self._graph.neighbors(current)
        gain = len(self._graph.elements_of(candidate) - covered)
        self._queries += 2
        if self._normalize:
            total = self._graph.num_elements
            return gain / total if total else 0.0
        return float(gain)

    # ------------------------------------------------------------------ #
    # structural checks (used by tests)
    # ------------------------------------------------------------------ #
    def check_monotone(
        self, rng: np.random.Generator, trials: int = 50
    ) -> bool:
        """Sampled check that ``A ⊆ B`` implies ``C(A) <= C(B)``."""
        n = self._graph.num_sets
        for _ in range(trials):
            size_b = int(rng.integers(0, n + 1))
            b = set(rng.choice(n, size=size_b, replace=False)) if size_b else set()
            if b:
                size_a = int(rng.integers(0, len(b) + 1))
                a = set(rng.choice(sorted(b), size=size_a, replace=False)) if size_a else set()
            else:
                a = set()
            if self(a) > self(b) + 1e-12:
                return False
        return True

    def check_submodular(
        self, rng: np.random.Generator, trials: int = 50
    ) -> bool:
        """Sampled check of diminishing returns.

        For ``A ⊆ B`` and a set ``x ∉ B`` the marginal gain of ``x`` on ``A``
        must be at least its gain on ``B``.
        """
        n = self._graph.num_sets
        if n < 2:
            return True
        for _ in range(trials):
            x = int(rng.integers(0, n))
            rest = [s for s in range(n) if s != x]
            size_b = int(rng.integers(0, len(rest) + 1))
            b = set(rng.choice(rest, size=size_b, replace=False)) if size_b else set()
            if b:
                size_a = int(rng.integers(0, len(b) + 1))
                a = set(rng.choice(sorted(b), size=size_a, replace=False)) if size_a else set()
            else:
                a = set()
            if self.marginal_gain(a, x) + 1e-12 < self.marginal_gain(b, x):
                return False
        return True

    def greedy_upper_bound(self, k: int) -> float:
        """A trivial upper bound on ``Opt_k``: the sum of the k largest sets."""
        degrees = sorted(
            (self._graph.set_degree(s) for s in self._graph.set_ids()), reverse=True
        )
        bound = float(sum(degrees[:k]))
        if self._normalize:
            total = self._graph.num_elements
            return min(1.0, bound / total) if total else 1.0
        return min(bound, float(self._graph.num_elements))

    def best_singleton(self) -> tuple[int, float]:
        """The single set with the largest coverage and its value."""
        best_set, best_value = 0, -1.0
        for set_id in self._graph.set_ids():
            value = float(self._graph.set_degree(set_id))
            if value > best_value:
                best_set, best_value = set_id, value
        if self._normalize:
            total = self._graph.num_elements
            best_value = best_value / total if total else 1.0
        return best_set, best_value

    def evaluate_many(self, solutions: Sequence[Iterable[int]]) -> list[float]:
        """Evaluate several solutions (convenience for experiment sweeps)."""
        return [self(solution) for solution in solutions]
