"""Label-aware set systems.

:class:`SetSystem` is the user-facing representation of a coverage instance:
a family of named sets over a named ground set.  Internally it interns labels
to integer ids and stores the membership relation in a
:class:`repro.coverage.bipartite.BipartiteGraph`, which is what all the
algorithms operate on.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.coverage.bipartite import BipartiteGraph
from repro.errors import InvalidInstanceError

__all__ = ["SetSystem"]


class SetSystem:
    """A family of named sets over a named ground set of elements.

    Example
    -------
    >>> system = SetSystem.from_dict({"a": [1, 2, 3], "b": [3, 4]})
    >>> system.n, system.m, system.num_edges
    (2, 4, 5)
    >>> sorted(system.members("a"))
    [1, 2, 3]
    """

    def __init__(self) -> None:
        self._set_labels: list[Hashable] = []
        self._set_index: dict[Hashable, int] = {}
        self._element_labels: list[Hashable] = []
        self._element_index: dict[Hashable, int] = {}
        self._memberships: list[set[int]] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, mapping: Mapping[Hashable, Iterable[Hashable]]) -> "SetSystem":
        """Build a system from ``{set_label: iterable of element labels}``."""
        system = cls()
        for label, members in mapping.items():
            system.add_set(label, members)
        return system

    @classmethod
    def from_lists(cls, families: Iterable[Iterable[Hashable]]) -> "SetSystem":
        """Build a system from a list of member lists; set labels are indices."""
        system = cls()
        for index, members in enumerate(families):
            system.add_set(index, members)
        return system

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Hashable, Hashable]]) -> "SetSystem":
        """Build a system from (set_label, element_label) pairs."""
        system = cls()
        for set_label, element_label in edges:
            system.add_membership(set_label, element_label)
        return system

    def add_set(self, label: Hashable, members: Iterable[Hashable] = ()) -> int:
        """Add a (possibly empty) set with the given label; return its id.

        Adding an existing label extends that set with the new members.
        """
        set_id = self._intern_set(label)
        for member in members:
            element_id = self._intern_element(member)
            self._memberships[set_id].add(element_id)
        return set_id

    def add_membership(self, set_label: Hashable, element_label: Hashable) -> tuple[int, int]:
        """Add one membership edge by labels; return the (set_id, element_id)."""
        set_id = self._intern_set(set_label)
        element_id = self._intern_element(element_label)
        self._memberships[set_id].add(element_id)
        return set_id, element_id

    def _intern_set(self, label: Hashable) -> int:
        if label in self._set_index:
            return self._set_index[label]
        set_id = len(self._set_labels)
        self._set_labels.append(label)
        self._set_index[label] = set_id
        self._memberships.append(set())
        return set_id

    def _intern_element(self, label: Hashable) -> int:
        if label in self._element_index:
            return self._element_index[label]
        element_id = len(self._element_labels)
        self._element_labels.append(label)
        self._element_index[label] = element_id
        return element_id

    # ------------------------------------------------------------------ #
    # sizes
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of sets (``n`` in the paper)."""
        return len(self._set_labels)

    @property
    def m(self) -> int:
        """Number of distinct elements (``m`` in the paper)."""
        return len(self._element_labels)

    @property
    def num_edges(self) -> int:
        """Total number of membership edges."""
        return sum(len(members) for members in self._memberships)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def set_id(self, label: Hashable) -> int:
        """Internal id of a set label."""
        try:
            return self._set_index[label]
        except KeyError as exc:
            raise KeyError(f"unknown set label: {label!r}") from exc

    def element_id(self, label: Hashable) -> int:
        """Internal id of an element label."""
        try:
            return self._element_index[label]
        except KeyError as exc:
            raise KeyError(f"unknown element label: {label!r}") from exc

    def set_label(self, set_id: int) -> Hashable:
        """Label of a set id."""
        return self._set_labels[set_id]

    def element_label(self, element_id: int) -> Hashable:
        """Label of an element id."""
        return self._element_labels[element_id]

    def set_labels(self) -> list[Hashable]:
        """All set labels in id order."""
        return list(self._set_labels)

    def element_labels(self) -> list[Hashable]:
        """All element labels in id order."""
        return list(self._element_labels)

    def members(self, set_label: Hashable) -> set[Hashable]:
        """Member element labels of one set (looked up by label)."""
        set_id = self.set_id(set_label)
        return {self._element_labels[e] for e in self._memberships[set_id]}

    def members_by_id(self, set_id: int) -> frozenset[int]:
        """Member element ids of one set (looked up by id)."""
        if not 0 <= set_id < self.n:
            raise InvalidInstanceError(f"set id {set_id} out of range [0, {self.n})")
        return frozenset(self._memberships[set_id])

    def labels_for(self, set_ids: Iterable[int]) -> list[Hashable]:
        """Convert internal set ids back to their labels."""
        return [self._set_labels[set_id] for set_id in set_ids]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all (set_id, element_id) membership edges."""
        for set_id, members in enumerate(self._memberships):
            for element_id in members:
                yield set_id, element_id

    def labeled_edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        """Iterate over all (set_label, element_label) membership edges."""
        for set_id, element_id in self.edges():
            yield self._set_labels[set_id], self._element_labels[element_id]

    # ------------------------------------------------------------------ #
    # conversion
    # ------------------------------------------------------------------ #
    def to_graph(self) -> BipartiteGraph:
        """Materialise the membership relation as a :class:`BipartiteGraph`."""
        if self.n == 0:
            raise InvalidInstanceError("a set system needs at least one set")
        graph = BipartiteGraph(self.n)
        for set_id, element_id in self.edges():
            graph.add_edge(set_id, element_id)
        return graph

    def to_dict(self) -> dict[Hashable, set[Hashable]]:
        """Return ``{set_label: set of element labels}``."""
        return {label: self.members(label) for label in self._set_labels}

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SetSystem(n={self.n}, m={self.m}, edges={self.num_edges})"
