"""Serialisation of set systems and instances.

Three formats are supported:

* **Edge list** (text): one ``set<TAB>element`` pair per line — exactly the
  edge-arrival stream format, so a file can be replayed as a stream.
* **JSON**: a self-describing document with labels, used for fixtures and for
  exchanging generated workloads between machines.
* **Columnar** (binary, memory-mapped): a directory with the set-id and
  element columns as ``uint64`` ``.npy`` files plus a JSON metadata/vocab
  sidecar.  :func:`open_columnar` memory-maps the columns, so
  :meth:`repro.streaming.stream.EdgeStream.from_columnar` can build
  :class:`~repro.streaming.batches.EventBatch` chunks straight from disk
  without ever materialising per-edge Python tuples — the fast ingestion
  path for large workloads (``benchmarks/bench_offline_throughput.py``
  quantifies the gap against :func:`read_edge_list`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.setsystem import SetSystem

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "system_to_json",
    "system_from_json",
    "save_system",
    "load_system",
    "ColumnarEdges",
    "write_columnar",
    "write_columnar_columns",
    "open_columnar",
    "columnar_from_edge_list",
    "ColumnarSets",
    "write_columnar_sets",
    "open_columnar_sets",
]

#: Format marker written into every columnar metadata sidecar.
COLUMNAR_FORMAT = "repro.columnar.v1"

#: Format marker for the CSR set-arrival variant (offsets + members columns).
COLUMNAR_SETS_FORMAT = "repro.columnar-sets.v1"


def write_edge_list(
    edges: Iterable[tuple[Hashable, Hashable]], path: str | Path, *, sep: str = "\t"
) -> int:
    """Write (set, element) pairs to a text file; return the number written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for set_label, element_label in edges:
            handle.write(f"{set_label}{sep}{element_label}\n")
            count += 1
    return count


def read_edge_list(path: str | Path, *, sep: str = "\t") -> list[tuple[str, str]]:
    """Read (set, element) string pairs from a text file.

    Blank lines and lines starting with ``#`` are skipped.
    """
    path = Path(path)
    edges: list[tuple[str, str]] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(sep)
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 2 fields, got {len(parts)}")
            edges.append((parts[0], parts[1]))
    return edges


def system_to_json(system: SetSystem) -> str:
    """Serialise a :class:`SetSystem` to a JSON document (labels preserved)."""
    payload = {
        "format": "repro.setsystem.v1",
        "sets": {str(label): sorted(map(str, system.members(label))) for label in system.set_labels()},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def system_from_json(document: str) -> SetSystem:
    """Deserialise a :class:`SetSystem` from :func:`system_to_json` output."""
    payload = json.loads(document)
    if payload.get("format") != "repro.setsystem.v1":
        raise ValueError("not a repro.setsystem.v1 document")
    return SetSystem.from_dict(payload["sets"])


def save_system(system: SetSystem, path: str | Path) -> None:
    """Write a set system to a ``.json`` file."""
    Path(path).write_text(system_to_json(system), encoding="utf-8")


def load_system(path: str | Path) -> SetSystem:
    """Read a set system from a ``.json`` file."""
    return system_from_json(Path(path).read_text(encoding="utf-8"))


def graph_to_edge_lines(graph: BipartiteGraph) -> list[str]:
    """Render a graph's edges as ``set<TAB>element`` text lines (sorted)."""
    return [f"{s}\t{e}" for s, e in sorted(graph.edges())]


# --------------------------------------------------------------------- #
# columnar (memory-mapped) edge storage
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ColumnarEdges:
    """Memory-mapped columnar view of an edge list.

    ``set_ids`` / ``elements`` are parallel ``uint64`` arrays (one entry per
    edge), normally memory-mapped straight off disk by :func:`open_columnar`.
    When the source labels were not integers, ``set_labels`` /
    ``element_labels`` hold the vocab (label of id ``i`` at position ``i``);
    integer-labelled sources keep their ids verbatim and carry no vocab.
    """

    set_ids: np.ndarray
    elements: np.ndarray
    num_sets: int
    num_elements: int
    set_labels: tuple[str, ...] | None = None
    element_labels: tuple[str, ...] | None = None
    path: Path | None = None
    _graph_cache: "BipartiteGraph | None" = field(
        default=None, repr=False, compare=False
    )

    #: Rows converted per chunk when unrolling the columns into Python pairs;
    #: keeps iteration streaming instead of materialising the whole mapped
    #: file as two full-size Python lists.
    _ITER_CHUNK = 65_536

    @property
    def num_edges(self) -> int:
        """Number of edges stored."""
        return len(self.set_ids)

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Yield the raw ``(set_id, element)`` integer pairs, in file order."""
        for start in range(0, len(self.set_ids), self._ITER_CHUNK):
            stop = start + self._ITER_CHUNK
            yield from zip(
                self.set_ids[start:stop].tolist(), self.elements[start:stop].tolist()
            )

    def to_graph(self) -> BipartiteGraph:
        """Materialise the columns as a :class:`BipartiteGraph`.

        This is the *evaluation* view of a columnar workload (exact coverage
        of a candidate solution, offline references); the streaming/batched
        consumers go through
        :meth:`repro.streaming.stream.EdgeStream.from_columnar` instead and
        never materialise per-edge objects.  The O(edges) build runs once
        per view: repeated callers (e.g. a :class:`repro.api.Session`
        sweeping many solvers over one columnar problem) share the cached
        graph.
        """
        if self._graph_cache is None:
            graph = BipartiteGraph(max(1, self.num_sets))
            for set_id, element in self.pairs():
                graph.add_edge(set_id, element)
            object.__setattr__(self, "_graph_cache", graph)
        return self._graph_cache

    def labelled_pairs(self) -> Iterator[tuple[str, str]]:
        """Yield ``(set, element)`` label pairs, matching the source labels.

        Integer-labelled columns render their ids as decimal strings, so a
        columnar file converted from a text edge list round-trips to exactly
        the pairs :func:`read_edge_list` returns.
        """
        sets = self.set_labels
        elements = self.element_labels
        for set_id, element in self.pairs():
            yield (
                sets[set_id] if sets is not None else str(set_id),
                elements[element] if elements is not None else str(element),
            )


def _encode_column(labels: list) -> tuple[np.ndarray, tuple[str, ...] | None]:
    """Encode a label column as uint64 ids, keeping integer labels verbatim.

    Integer labels (including canonical decimal strings, as produced by
    :func:`read_edge_list` on generated workloads) map to their own value;
    anything else gets first-seen vocab ids plus the vocab itself.  A string
    only takes the verbatim path when it is the canonical rendering of its
    value (``str(int(label)) == label``) — otherwise distinct labels like
    ``"01"`` and ``"1"`` would silently collapse onto one id.
    """
    values = np.empty(len(labels), dtype=np.uint64)
    try:
        for index, label in enumerate(labels):
            if isinstance(label, bool) or (not isinstance(label, (int, str))):
                raise ValueError
            value = int(label)
            if isinstance(label, str) and str(value) != label:
                raise ValueError
            values[index] = value
    except (ValueError, OverflowError):
        vocab: dict[str, int] = {}
        for index, label in enumerate(labels):
            key = str(label)
            values[index] = vocab.setdefault(key, len(vocab))
        return values, tuple(vocab)
    return values, None


def _default_dimension(
    override: int | None,
    labels: tuple[str, ...] | None,
    ids: np.ndarray,
    *,
    distinct: bool,
) -> int:
    """The shared size-defaulting rule for every columnar format.

    An explicit override wins; a vocab's length is authoritative for
    labelled columns; otherwise integer columns default to the distinct
    count (element dimensions) or ``max id + 1`` (set dimensions, matching
    :class:`~repro.streaming.stream.EdgeStream`).
    """
    if override is not None:
        return int(override)
    if labels is not None:
        return len(labels)
    if distinct:
        return len(np.unique(ids))
    return int(ids.max()) + 1 if len(ids) else 0


def _write_columnar_dir(
    path: Path, columns: dict[str, np.ndarray], meta: dict
) -> None:
    """The one place any columnar directory (columns + meta.json) is written."""
    path.mkdir(parents=True, exist_ok=True)
    for name, column in columns.items():
        np.save(path / f"{name}.npy", column)
    (path / "meta.json").write_text(json.dumps(meta, indent=2), encoding="utf-8")


def _write_edge_payload(
    path: Path,
    set_ids: np.ndarray,
    element_ids: np.ndarray,
    *,
    num_sets: int | None,
    num_elements: int | None,
    set_labels: tuple[str, ...] | None,
    element_labels: tuple[str, ...] | None,
) -> int:
    """The edge layout, shared by :func:`write_columnar` (label-encoding pair
    path) and :func:`write_columnar_columns` (whole-array path) so the size
    defaulting and the metadata schema cannot diverge between them."""
    _write_columnar_dir(
        path,
        {"set_ids": set_ids, "elements": element_ids},
        {
            "format": COLUMNAR_FORMAT,
            "num_edges": len(set_ids),
            "num_sets": _default_dimension(num_sets, set_labels, set_ids, distinct=False),
            "num_elements": _default_dimension(
                num_elements, element_labels, element_ids, distinct=True
            ),
            "set_labels": list(set_labels) if set_labels is not None else None,
            "element_labels": (
                list(element_labels) if element_labels is not None else None
            ),
        },
    )
    return len(set_ids)


def write_columnar(
    edges: Iterable[tuple[Hashable, Hashable]],
    path: str | Path,
    *,
    num_sets: int | None = None,
    num_elements: int | None = None,
) -> int:
    """Write ``(set, element)`` pairs as a columnar directory; return the count.

    ``path`` becomes a directory holding ``set_ids.npy`` / ``elements.npy``
    (``uint64`` columns, loadable with ``mmap_mode``) and ``meta.json``
    (format marker, sizes, and the label vocab when labels are not integers).
    ``num_sets`` / ``num_elements`` default to ``max id + 1`` and the count
    of distinct elements respectively, matching the conventions of
    :class:`~repro.streaming.stream.EdgeStream`.
    """
    set_column: list = []
    element_column: list = []
    for set_label, element_label in edges:
        set_column.append(set_label)
        element_column.append(element_label)
    set_ids, set_labels = _encode_column(set_column)
    element_ids, element_labels = _encode_column(element_column)
    return _write_edge_payload(
        Path(path),
        set_ids,
        element_ids,
        num_sets=num_sets,
        num_elements=num_elements,
        set_labels=set_labels,
        element_labels=element_labels,
    )


def open_columnar(path: str | Path) -> ColumnarEdges:
    """Open a columnar directory with the columns memory-mapped read-only."""
    path = Path(path)
    meta_path = path / "meta.json"
    if not meta_path.is_file():
        raise ValueError(f"{path} is not a columnar edge directory (no meta.json)")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if meta.get("format") != COLUMNAR_FORMAT:
        raise ValueError(f"{path} is not a {COLUMNAR_FORMAT} directory")
    # Zero-length arrays cannot be memory-mapped (mmap rejects empty files),
    # so degenerate workloads load eagerly; everything else maps lazily.
    mmap_mode = "r" if meta.get("num_edges") else None
    set_ids = np.load(path / "set_ids.npy", mmap_mode=mmap_mode)
    elements = np.load(path / "elements.npy", mmap_mode=mmap_mode)
    if len(set_ids) != len(elements) or len(set_ids) != meta["num_edges"]:
        raise ValueError(
            f"{path}: column lengths ({len(set_ids)}, {len(elements)}) do not "
            f"match meta num_edges={meta['num_edges']}"
        )
    set_labels = meta.get("set_labels")
    element_labels = meta.get("element_labels")
    return ColumnarEdges(
        set_ids=set_ids,
        elements=elements,
        num_sets=int(meta["num_sets"]),
        num_elements=int(meta["num_elements"]),
        set_labels=tuple(set_labels) if set_labels is not None else None,
        element_labels=tuple(element_labels) if element_labels is not None else None,
        path=path,
    )


def columnar_from_edge_list(
    source: str | Path, destination: str | Path, *, sep: str = "\t"
) -> int:
    """Convert a text edge list into the columnar format; return the count."""
    return write_columnar(read_edge_list(source, sep=sep), destination)


def write_columnar_columns(
    set_ids: np.ndarray,
    elements: np.ndarray,
    path: str | Path,
    *,
    num_sets: int | None = None,
    num_elements: int | None = None,
) -> int:
    """Write already-columnar integer edge data without per-edge Python objects.

    The whole-array twin of :func:`write_columnar` for workloads that are
    born as numpy columns (generators, shard dumps, benchmarks at the tens-
    of-millions-of-edges scale where a per-pair loop would dominate).  Both
    columns are cast to ``uint64`` and written in the same
    :data:`COLUMNAR_FORMAT` layout :func:`open_columnar` reads.
    """
    columns_in = {"set_ids": np.asarray(set_ids), "elements": np.asarray(elements)}
    for name, column in columns_in.items():
        if column.dtype.kind not in "iu":
            raise ValueError(
                f"{name} must be an integer column, got dtype {column.dtype}"
            )
        # An unsafe cast would silently wrap negatives to astronomical
        # uint64 ids (and num_sets/num_elements metadata); fail instead.
        if column.dtype.kind == "i" and len(column) and int(column.min()) < 0:
            raise ValueError(f"{name} contains negative ids")
    set_column = np.ascontiguousarray(columns_in["set_ids"], dtype=np.uint64)
    element_column = np.ascontiguousarray(columns_in["elements"], dtype=np.uint64)
    if set_column.ndim != 1 or set_column.shape != element_column.shape:
        raise ValueError(
            "set_ids and elements must be equal-length one-dimensional columns"
        )
    return _write_edge_payload(
        Path(path),
        set_column,
        element_column,
        num_sets=num_sets,
        num_elements=num_elements,
        set_labels=None,
        element_labels=None,
    )


# --------------------------------------------------------------------- #
# columnar (memory-mapped) CSR set-arrival storage
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ColumnarSets:
    """Memory-mapped CSR view of a set family (the set-arrival twin of
    :class:`ColumnarEdges`).

    ``set_ids[j]`` is the ``j``-th stored set and its members are
    ``members[offsets[j]:offsets[j+1]]`` — the exact layout of a set-layout
    :class:`~repro.streaming.batches.EventBatch`, so
    :meth:`repro.streaming.stream.SetStream.from_columnar` can slice batches
    straight off the mapped columns.  When the source labels were not
    integers, ``set_labels`` / ``element_labels`` hold the vocab.
    """

    set_ids: np.ndarray
    offsets: np.ndarray
    members: np.ndarray
    num_sets: int
    num_elements: int
    set_labels: tuple[str, ...] | None = None
    element_labels: tuple[str, ...] | None = None
    path: Path | None = None

    @property
    def num_stored_sets(self) -> int:
        """Number of set arrivals stored (one CSR row each)."""
        return len(self.set_ids)

    @property
    def num_memberships(self) -> int:
        """Total number of (set, element) memberships stored."""
        return len(self.members)

    def sets(self) -> Iterator[tuple[int, list[int]]]:
        """Yield ``(set_id, members)`` integer pairs, in stored order."""
        bounds = self.offsets.tolist()
        ids = self.set_ids.tolist()
        for row, set_id in enumerate(ids):
            yield set_id, self.members[bounds[row] : bounds[row + 1]].tolist()

    def to_graph(self) -> BipartiteGraph:
        """Materialise the family as a :class:`BipartiteGraph` (evaluation view)."""
        graph = BipartiteGraph(max(1, self.num_sets))
        for set_id, members in self.sets():
            for element in members:
                graph.add_edge(set_id, element)
        return graph


def write_columnar_sets(
    sets: Iterable[tuple[Hashable, Sequence[Hashable]]],
    path: str | Path,
    *,
    num_sets: int | None = None,
    num_elements: int | None = None,
) -> int:
    """Write ``(set, members)`` pairs as a CSR columnar directory.

    ``path`` becomes a directory holding ``set_ids.npy`` / ``members.npy``
    (``uint64`` columns) and ``offsets.npy`` (``int64``, one row per stored
    set plus the closing bound) alongside ``meta.json``.  Labels follow the
    same convention as :func:`write_columnar`: integer labels are kept
    verbatim, anything else gets a first-seen vocab.  Returns the number of
    memberships written.
    """
    path = Path(path)
    set_column: list = []
    member_column: list = []
    lengths: list[int] = []
    for set_label, members in sets:
        members = list(members)
        set_column.append(set_label)
        member_column.extend(members)
        lengths.append(len(members))
    set_ids, set_labels = _encode_column(set_column)
    member_ids, element_labels = _encode_column(member_column)
    offsets = np.zeros(len(set_column) + 1, dtype=np.int64)
    np.cumsum(np.asarray(lengths, dtype=np.int64), out=offsets[1:])
    _write_columnar_dir(
        path,
        {"set_ids": set_ids, "offsets": offsets, "members": member_ids},
        {
            "format": COLUMNAR_SETS_FORMAT,
            "num_stored_sets": len(set_ids),
            "num_memberships": len(member_ids),
            "num_sets": _default_dimension(num_sets, set_labels, set_ids, distinct=False),
            "num_elements": _default_dimension(
                num_elements, element_labels, member_ids, distinct=True
            ),
            "set_labels": list(set_labels) if set_labels is not None else None,
            "element_labels": (
                list(element_labels) if element_labels is not None else None
            ),
        },
    )
    return len(member_ids)


def open_columnar_sets(path: str | Path) -> ColumnarSets:
    """Open a CSR set directory with the columns memory-mapped read-only."""
    path = Path(path)
    meta_path = path / "meta.json"
    if not meta_path.is_file():
        raise ValueError(f"{path} is not a columnar set directory (no meta.json)")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if meta.get("format") != COLUMNAR_SETS_FORMAT:
        raise ValueError(f"{path} is not a {COLUMNAR_SETS_FORMAT} directory")
    set_ids = np.load(path / "set_ids.npy", mmap_mode="r" if meta["num_stored_sets"] else None)
    offsets = np.load(path / "offsets.npy")
    members = np.load(path / "members.npy", mmap_mode="r" if meta["num_memberships"] else None)
    if len(set_ids) != meta["num_stored_sets"] or len(members) != meta["num_memberships"]:
        raise ValueError(
            f"{path}: column lengths ({len(set_ids)} sets, {len(members)} members) "
            f"do not match meta ({meta['num_stored_sets']}, {meta['num_memberships']})"
        )
    if len(offsets) != len(set_ids) + 1 or (len(offsets) and offsets[-1] != len(members)):
        raise ValueError(f"{path}: offsets column is inconsistent with the member column")
    if len(offsets) and (offsets[0] != 0 or bool(np.any(np.diff(offsets) < 0))):
        raise ValueError(
            f"{path}: offsets must start at 0 and be non-decreasing "
            "(corrupt CSR row bounds would silently yield wrong families)"
        )
    set_labels = meta.get("set_labels")
    element_labels = meta.get("element_labels")
    return ColumnarSets(
        set_ids=set_ids,
        offsets=offsets,
        members=members,
        num_sets=int(meta["num_sets"]),
        num_elements=int(meta["num_elements"]),
        set_labels=tuple(set_labels) if set_labels is not None else None,
        element_labels=tuple(element_labels) if element_labels is not None else None,
        path=path,
    )
