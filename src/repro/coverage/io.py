"""Serialisation of set systems and instances.

Two formats are supported:

* **Edge list** (text): one ``set<TAB>element`` pair per line — exactly the
  edge-arrival stream format, so a file can be replayed as a stream.
* **JSON**: a self-describing document with labels, used for fixtures and for
  exchanging generated workloads between machines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Hashable, Iterable

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.setsystem import SetSystem

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "system_to_json",
    "system_from_json",
    "save_system",
    "load_system",
]


def write_edge_list(
    edges: Iterable[tuple[Hashable, Hashable]], path: str | Path, *, sep: str = "\t"
) -> int:
    """Write (set, element) pairs to a text file; return the number written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for set_label, element_label in edges:
            handle.write(f"{set_label}{sep}{element_label}\n")
            count += 1
    return count


def read_edge_list(path: str | Path, *, sep: str = "\t") -> list[tuple[str, str]]:
    """Read (set, element) string pairs from a text file.

    Blank lines and lines starting with ``#`` are skipped.
    """
    path = Path(path)
    edges: list[tuple[str, str]] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(sep)
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 2 fields, got {len(parts)}")
            edges.append((parts[0], parts[1]))
    return edges


def system_to_json(system: SetSystem) -> str:
    """Serialise a :class:`SetSystem` to a JSON document (labels preserved)."""
    payload = {
        "format": "repro.setsystem.v1",
        "sets": {str(label): sorted(map(str, system.members(label))) for label in system.set_labels()},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def system_from_json(document: str) -> SetSystem:
    """Deserialise a :class:`SetSystem` from :func:`system_to_json` output."""
    payload = json.loads(document)
    if payload.get("format") != "repro.setsystem.v1":
        raise ValueError("not a repro.setsystem.v1 document")
    return SetSystem.from_dict(payload["sets"])


def save_system(system: SetSystem, path: str | Path) -> None:
    """Write a set system to a ``.json`` file."""
    Path(path).write_text(system_to_json(system), encoding="utf-8")


def load_system(path: str | Path) -> SetSystem:
    """Read a set system from a ``.json`` file."""
    return system_from_json(Path(path).read_text(encoding="utf-8"))


def graph_to_edge_lines(graph: BipartiteGraph) -> list[str]:
    """Render a graph's edges as ``set<TAB>element`` text lines (sorted)."""
    return [f"{s}\t{e}" for s, e in sorted(graph.edges())]
