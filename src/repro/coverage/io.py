"""Serialisation of set systems and instances.

Three formats are supported:

* **Edge list** (text): one ``set<TAB>element`` pair per line — exactly the
  edge-arrival stream format, so a file can be replayed as a stream.
* **JSON**: a self-describing document with labels, used for fixtures and for
  exchanging generated workloads between machines.
* **Columnar** (binary, memory-mapped): a directory with the set-id and
  element columns as ``uint64`` ``.npy`` files plus a JSON metadata/vocab
  sidecar.  :func:`open_columnar` memory-maps the columns, so
  :meth:`repro.streaming.stream.EdgeStream.from_columnar` can build
  :class:`~repro.streaming.batches.EventBatch` chunks straight from disk
  without ever materialising per-edge Python tuples — the fast ingestion
  path for large workloads (``benchmarks/bench_offline_throughput.py``
  quantifies the gap against :func:`read_edge_list`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Iterable, Iterator

import numpy as np

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.setsystem import SetSystem

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "system_to_json",
    "system_from_json",
    "save_system",
    "load_system",
    "ColumnarEdges",
    "write_columnar",
    "open_columnar",
    "columnar_from_edge_list",
]

#: Format marker written into every columnar metadata sidecar.
COLUMNAR_FORMAT = "repro.columnar.v1"


def write_edge_list(
    edges: Iterable[tuple[Hashable, Hashable]], path: str | Path, *, sep: str = "\t"
) -> int:
    """Write (set, element) pairs to a text file; return the number written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for set_label, element_label in edges:
            handle.write(f"{set_label}{sep}{element_label}\n")
            count += 1
    return count


def read_edge_list(path: str | Path, *, sep: str = "\t") -> list[tuple[str, str]]:
    """Read (set, element) string pairs from a text file.

    Blank lines and lines starting with ``#`` are skipped.
    """
    path = Path(path)
    edges: list[tuple[str, str]] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(sep)
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 2 fields, got {len(parts)}")
            edges.append((parts[0], parts[1]))
    return edges


def system_to_json(system: SetSystem) -> str:
    """Serialise a :class:`SetSystem` to a JSON document (labels preserved)."""
    payload = {
        "format": "repro.setsystem.v1",
        "sets": {str(label): sorted(map(str, system.members(label))) for label in system.set_labels()},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def system_from_json(document: str) -> SetSystem:
    """Deserialise a :class:`SetSystem` from :func:`system_to_json` output."""
    payload = json.loads(document)
    if payload.get("format") != "repro.setsystem.v1":
        raise ValueError("not a repro.setsystem.v1 document")
    return SetSystem.from_dict(payload["sets"])


def save_system(system: SetSystem, path: str | Path) -> None:
    """Write a set system to a ``.json`` file."""
    Path(path).write_text(system_to_json(system), encoding="utf-8")


def load_system(path: str | Path) -> SetSystem:
    """Read a set system from a ``.json`` file."""
    return system_from_json(Path(path).read_text(encoding="utf-8"))


def graph_to_edge_lines(graph: BipartiteGraph) -> list[str]:
    """Render a graph's edges as ``set<TAB>element`` text lines (sorted)."""
    return [f"{s}\t{e}" for s, e in sorted(graph.edges())]


# --------------------------------------------------------------------- #
# columnar (memory-mapped) edge storage
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ColumnarEdges:
    """Memory-mapped columnar view of an edge list.

    ``set_ids`` / ``elements`` are parallel ``uint64`` arrays (one entry per
    edge), normally memory-mapped straight off disk by :func:`open_columnar`.
    When the source labels were not integers, ``set_labels`` /
    ``element_labels`` hold the vocab (label of id ``i`` at position ``i``);
    integer-labelled sources keep their ids verbatim and carry no vocab.
    """

    set_ids: np.ndarray
    elements: np.ndarray
    num_sets: int
    num_elements: int
    set_labels: tuple[str, ...] | None = None
    element_labels: tuple[str, ...] | None = None
    path: Path | None = None
    _graph_cache: "BipartiteGraph | None" = field(
        default=None, repr=False, compare=False
    )

    #: Rows converted per chunk when unrolling the columns into Python pairs;
    #: keeps iteration streaming instead of materialising the whole mapped
    #: file as two full-size Python lists.
    _ITER_CHUNK = 65_536

    @property
    def num_edges(self) -> int:
        """Number of edges stored."""
        return len(self.set_ids)

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Yield the raw ``(set_id, element)`` integer pairs, in file order."""
        for start in range(0, len(self.set_ids), self._ITER_CHUNK):
            stop = start + self._ITER_CHUNK
            yield from zip(
                self.set_ids[start:stop].tolist(), self.elements[start:stop].tolist()
            )

    def to_graph(self) -> BipartiteGraph:
        """Materialise the columns as a :class:`BipartiteGraph`.

        This is the *evaluation* view of a columnar workload (exact coverage
        of a candidate solution, offline references); the streaming/batched
        consumers go through
        :meth:`repro.streaming.stream.EdgeStream.from_columnar` instead and
        never materialise per-edge objects.  The O(edges) build runs once
        per view: repeated callers (e.g. a :class:`repro.api.Session`
        sweeping many solvers over one columnar problem) share the cached
        graph.
        """
        if self._graph_cache is None:
            graph = BipartiteGraph(max(1, self.num_sets))
            for set_id, element in self.pairs():
                graph.add_edge(set_id, element)
            object.__setattr__(self, "_graph_cache", graph)
        return self._graph_cache

    def labelled_pairs(self) -> Iterator[tuple[str, str]]:
        """Yield ``(set, element)`` label pairs, matching the source labels.

        Integer-labelled columns render their ids as decimal strings, so a
        columnar file converted from a text edge list round-trips to exactly
        the pairs :func:`read_edge_list` returns.
        """
        sets = self.set_labels
        elements = self.element_labels
        for set_id, element in self.pairs():
            yield (
                sets[set_id] if sets is not None else str(set_id),
                elements[element] if elements is not None else str(element),
            )


def _encode_column(labels: list) -> tuple[np.ndarray, tuple[str, ...] | None]:
    """Encode a label column as uint64 ids, keeping integer labels verbatim.

    Integer labels (including canonical decimal strings, as produced by
    :func:`read_edge_list` on generated workloads) map to their own value;
    anything else gets first-seen vocab ids plus the vocab itself.  A string
    only takes the verbatim path when it is the canonical rendering of its
    value (``str(int(label)) == label``) — otherwise distinct labels like
    ``"01"`` and ``"1"`` would silently collapse onto one id.
    """
    values = np.empty(len(labels), dtype=np.uint64)
    try:
        for index, label in enumerate(labels):
            if isinstance(label, bool) or (not isinstance(label, (int, str))):
                raise ValueError
            value = int(label)
            if isinstance(label, str) and str(value) != label:
                raise ValueError
            values[index] = value
    except (ValueError, OverflowError):
        vocab: dict[str, int] = {}
        for index, label in enumerate(labels):
            key = str(label)
            values[index] = vocab.setdefault(key, len(vocab))
        return values, tuple(vocab)
    return values, None


def write_columnar(
    edges: Iterable[tuple[Hashable, Hashable]],
    path: str | Path,
    *,
    num_sets: int | None = None,
    num_elements: int | None = None,
) -> int:
    """Write ``(set, element)`` pairs as a columnar directory; return the count.

    ``path`` becomes a directory holding ``set_ids.npy`` / ``elements.npy``
    (``uint64`` columns, loadable with ``mmap_mode``) and ``meta.json``
    (format marker, sizes, and the label vocab when labels are not integers).
    ``num_sets`` / ``num_elements`` default to ``max id + 1`` and the count
    of distinct elements respectively, matching the conventions of
    :class:`~repro.streaming.stream.EdgeStream`.
    """
    path = Path(path)
    set_column: list = []
    element_column: list = []
    for set_label, element_label in edges:
        set_column.append(set_label)
        element_column.append(element_label)
    set_ids, set_labels = _encode_column(set_column)
    element_ids, element_labels = _encode_column(element_column)
    if num_sets is None:
        if set_labels is not None:
            num_sets = len(set_labels)
        else:
            num_sets = int(set_ids.max()) + 1 if len(set_ids) else 0
    if num_elements is None:
        if element_labels is not None:
            num_elements = len(element_labels)
        else:
            num_elements = len(np.unique(element_ids))
    path.mkdir(parents=True, exist_ok=True)
    np.save(path / "set_ids.npy", set_ids)
    np.save(path / "elements.npy", element_ids)
    meta = {
        "format": COLUMNAR_FORMAT,
        "num_edges": len(set_ids),
        "num_sets": int(num_sets),
        "num_elements": int(num_elements),
        "set_labels": list(set_labels) if set_labels is not None else None,
        "element_labels": list(element_labels) if element_labels is not None else None,
    }
    (path / "meta.json").write_text(json.dumps(meta, indent=2), encoding="utf-8")
    return len(set_ids)


def open_columnar(path: str | Path) -> ColumnarEdges:
    """Open a columnar directory with the columns memory-mapped read-only."""
    path = Path(path)
    meta_path = path / "meta.json"
    if not meta_path.is_file():
        raise ValueError(f"{path} is not a columnar edge directory (no meta.json)")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if meta.get("format") != COLUMNAR_FORMAT:
        raise ValueError(f"{path} is not a {COLUMNAR_FORMAT} directory")
    # Zero-length arrays cannot be memory-mapped (mmap rejects empty files),
    # so degenerate workloads load eagerly; everything else maps lazily.
    mmap_mode = "r" if meta.get("num_edges") else None
    set_ids = np.load(path / "set_ids.npy", mmap_mode=mmap_mode)
    elements = np.load(path / "elements.npy", mmap_mode=mmap_mode)
    if len(set_ids) != len(elements) or len(set_ids) != meta["num_edges"]:
        raise ValueError(
            f"{path}: column lengths ({len(set_ids)}, {len(elements)}) do not "
            f"match meta num_edges={meta['num_edges']}"
        )
    set_labels = meta.get("set_labels")
    element_labels = meta.get("element_labels")
    return ColumnarEdges(
        set_ids=set_ids,
        elements=elements,
        num_sets=int(meta["num_sets"]),
        num_elements=int(meta["num_elements"]),
        set_labels=tuple(set_labels) if set_labels is not None else None,
        element_labels=tuple(element_labels) if element_labels is not None else None,
        path=path,
    )


def columnar_from_edge_list(
    source: str | Path, destination: str | Path, *, sep: str = "\t"
) -> int:
    """Convert a text edge list into the columnar format; return the count."""
    return write_columnar(read_edge_list(source, sep=sep), destination)
