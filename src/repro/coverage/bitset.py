"""Vectorised coverage evaluation with packed bitsets.

Greedy, local search and the experiment sweeps evaluate ``C(S)`` thousands of
times; the pure-Python set unions in :class:`BipartiteGraph` are fine for
streaming-sized sketches but become the bottleneck for large offline
reference runs.  Following the HPC guidance (vectorise the hot loop, keep the
algorithmic code unchanged), :class:`BitsetCoverage` packs every set's
membership into bit rows so that

* union of a family  = bitwise OR over rows,
* coverage value     = popcount of the union,
* marginal gain      = popcount of ``candidate AND NOT covered``,

all as whole-array operations.  The packing layout and popcount strategy come
from a pluggable :class:`~repro.coverage.kernels.KernelBackend` (``"bytes"``
for the original ``uint8`` lanes, ``"words"`` for ``uint64`` lanes touching
8x fewer lanes, ``"auto"`` to pick the fastest available); all backends are
bit-for-bit identical on every query (property-tested).

On top of the kernels, :meth:`greedy_k_cover` is *lazy* by default
(CELF-style): a max-heap of stale upper bounds over the vectorised marginal
gains means each selection step re-evaluates only the candidates whose bound
still beats the current best, via the :meth:`gains_for` subset kernel —
instead of recomputing all ``n`` gains per step as the eager path does.  The
evaluator is a drop-in read-only companion to a :class:`BipartiteGraph`:
results are bit-for-bit identical (property-tested) and substantially faster
on dense instances (``benchmarks/bench_offline_throughput.py`` quantifies the
difference).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

import numpy as np

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.kernels import (
    KernelBackend,
    canonical_backend_name,
    resolve_kernel_backend,
)

__all__ = ["BitsetCoverage", "KernelCache", "kernel_for"]


def kernel_for(graph: BipartiteGraph, backend: str | KernelBackend | None) -> "BitsetCoverage | None":
    """A packed kernel of ``graph``, or ``None`` when no backend is requested.

    The shared guard for solvers whose *offline phase* optionally runs on a
    kernel (the streaming family packs its sketch, the distributed
    coordinator its merged sketch): ``backend=None`` keeps the set-based
    path, and an empty graph skips packing — there is nothing to evaluate,
    and callers' greedy handles the graph directly.
    """
    if backend is None or graph.num_edges == 0:
        return None
    return BitsetCoverage(graph, backend=backend)

#: How many stale heap entries the lazy greedy re-evaluates per vectorised
#: :meth:`BitsetCoverage.gains_for` call.  Small enough that little work is
#: wasted when the refreshed top stays on top (the common CELF case), large
#: enough to amortise the per-call numpy overhead (measured best around 32
#: on zipf-heavy workloads whose gains decay fast between steps).
_LAZY_CHUNK = 32


class BitsetCoverage:
    """Packed-bitset evaluator of the coverage function of a fixed graph.

    Parameters
    ----------
    graph:
        The bipartite membership graph; it is snapshotted at construction
        (later mutations of the graph are not reflected).
    backend:
        A :class:`~repro.coverage.kernels.KernelBackend`, a registered
        backend name (``"bytes"``, ``"words"``), or ``"auto"`` (default) to
        pick the fastest available.
    """

    def __init__(self, graph: BipartiteGraph, *, backend: str | KernelBackend = "auto") -> None:
        self._backend = resolve_kernel_backend(backend)
        self._num_sets = graph.num_sets
        elements = np.fromiter(graph.elements(), dtype=np.int64, count=graph.num_elements)
        elements.sort()
        self._elements = elements
        self._num_elements = len(elements)
        width = max(1, self._num_elements)
        dense = np.zeros((graph.num_sets, width), dtype=bool)
        sizes = np.zeros(graph.num_sets, dtype=np.int64)
        for set_id in graph.set_ids():
            members = graph.elements_of(set_id)
            if not members:
                continue
            ids = np.fromiter(members, dtype=np.int64, count=len(members))
            dense[set_id, np.searchsorted(elements, ids)] = True
            sizes[set_id] = len(members)
        # Rows are packed along the element axis: shape (n, lanes) in the
        # backend's lane dtype.
        self._packed = self._backend.pack(dense)
        self._set_sizes = sizes

    # ------------------------------------------------------------------ #
    # basic facts
    # ------------------------------------------------------------------ #
    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self._num_sets

    @property
    def num_elements(self) -> int:
        """Number of elements in the snapshot."""
        return self._num_elements

    @property
    def backend(self) -> KernelBackend:
        """The packing/popcount backend in use."""
        return self._backend

    def set_size(self, set_id: int) -> int:
        """``|S|`` for one set."""
        return int(self._set_sizes[set_id])

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed rows (what a cache entry keeps resident)."""
        return int(self._packed.nbytes)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def _popcount(self, row: np.ndarray) -> int:
        return int(self._backend.popcount(row, None))

    @staticmethod
    def _as_index(set_ids: Iterable[int] | np.ndarray) -> np.ndarray:
        """Index array of set ids, with no intermediate Python list.

        numpy integer arrays pass through as-is (the hot sweep path); other
        iterables are converted element-wise.
        """
        if isinstance(set_ids, np.ndarray):
            return set_ids.astype(np.intp, copy=False)
        return np.fromiter((int(s) for s in set_ids), dtype=np.intp)

    def empty_bits(self) -> np.ndarray:
        """An all-zero packed bit-row (the union of no sets)."""
        return self._backend.empty_row(self._packed.shape[1])

    def union_bits(self, set_ids: Iterable[int] | np.ndarray) -> np.ndarray:
        """The packed union bit-row of a family of sets."""
        ids = self._as_index(set_ids)
        if ids.size == 0:
            return self.empty_bits()
        return np.bitwise_or.reduce(self._packed[ids], axis=0)

    def coverage(self, set_ids: Iterable[int] | np.ndarray) -> int:
        """``C(S) = |∪ S|``."""
        return self._popcount(self.union_bits(set_ids))

    def coverage_fraction(self, set_ids: Iterable[int] | np.ndarray) -> float:
        """Fraction of the snapshot's elements covered."""
        if self._num_elements == 0:
            return 1.0
        return self.coverage(set_ids) / self._num_elements

    def marginal_gains(self, covered_bits: np.ndarray) -> np.ndarray:
        """Marginal gain of *every* set against an already-covered bit-row.

        This is the vectorised inner step of eager greedy: one call evaluates
        all ``n`` candidates.  ``covered_bits`` must be a packed row from
        this evaluator (:meth:`union_bits` / :meth:`empty_bits`).
        """
        remaining = np.bitwise_and(self._packed, np.bitwise_not(covered_bits))
        return self._backend.popcount(remaining, 1)

    def gains_for(
        self, set_ids: Iterable[int] | np.ndarray, covered_bits: np.ndarray
    ) -> np.ndarray:
        """Marginal gains of an index subset of sets (the lazy-greedy kernel).

        Re-evaluates only the ``set_ids`` rows instead of all ``n``; the
        result is aligned with the input order.
        """
        ids = self._as_index(set_ids)
        if ids.size == 0:
            return np.zeros(0, dtype=np.int64)
        remaining = np.bitwise_and(self._packed[ids], np.bitwise_not(covered_bits))
        return self._backend.popcount(remaining, 1)

    # ------------------------------------------------------------------ #
    # greedy
    # ------------------------------------------------------------------ #
    def greedy(
        self,
        *,
        max_sets: int | None = None,
        target_coverage: int | None = None,
        forbidden: Iterable[int] = (),
        lazy: bool = True,
    ) -> tuple[list[int], int, list[int], int]:
        """Greedy selection loop on the packed rows.

        Runs until ``max_sets`` sets are chosen, ``target_coverage`` elements
        are covered, or no remaining set has positive marginal gain —
        mirroring :func:`repro.offline.greedy._lazy_greedy` so the same
        vectorised path serves k-cover, set cover and partial cover, on full
        instances and sketches alike.

        Returns ``(selected, coverage, gains, evaluations)`` where ``gains``
        is the realised marginal gain per step and ``evaluations`` counts
        marginal-gain evaluations (a proxy for time).
        """
        if lazy:
            return self._greedy_lazy(max_sets, target_coverage, frozenset(forbidden))
        return self._greedy_eager(max_sets, target_coverage, frozenset(forbidden))

    def _limit(self, max_sets: int | None) -> int:
        return self._num_sets if max_sets is None else min(max_sets, self._num_sets)

    def _greedy_eager(
        self, max_sets: int | None, target_coverage: int | None, forbidden: frozenset[int]
    ) -> tuple[list[int], int, list[int], int]:
        covered = self.empty_bits()
        chosen: list[int] = []
        gains_log: list[int] = []
        covered_count = 0
        evaluations = 0
        available = np.ones(self._num_sets, dtype=bool)
        for set_id in forbidden:
            # Ids outside the snapshot are ignored, matching the graph-based
            # greedy (a forbidden id that cannot be selected anyway is a
            # no-op, not a mask of some other row).
            if 0 <= set_id < self._num_sets:
                available[set_id] = False
        limit = self._limit(max_sets)
        while len(chosen) < limit and (
            target_coverage is None or covered_count < target_coverage
        ):
            gains = self.marginal_gains(covered)
            evaluations += self._num_sets
            gains[~available] = -1
            best = int(np.argmax(gains))
            gain = int(gains[best])
            if gain <= 0:
                break
            chosen.append(best)
            gains_log.append(gain)
            available[best] = False
            covered = np.bitwise_or(covered, self._packed[best])
            covered_count += gain
        return chosen, covered_count, gains_log, evaluations

    def _greedy_lazy(
        self, max_sets: int | None, target_coverage: int | None, forbidden: frozenset[int]
    ) -> tuple[list[int], int, list[int], int]:
        covered = self.empty_bits()
        chosen: list[int] = []
        gains_log: list[int] = []
        covered_count = 0
        limit = self._limit(max_sets)

        # Max-heap of (-upper_bound, set_id, version): ``version`` is the
        # number of selections made when the bound was computed.  Set sizes
        # are the exact gains at version 0, so initialisation is free of any
        # per-row popcount — but counts as one evaluation per set to stay
        # comparable with the heap greedy's accounting.
        heap: list[tuple[int, int, int]] = [
            (-int(self._set_sizes[set_id]), set_id, 0)
            for set_id in range(self._num_sets)
            if set_id not in forbidden
        ]
        heapq.heapify(heap)
        evaluations = len(heap)

        while heap and len(chosen) < limit and (
            target_coverage is None or covered_count < target_coverage
        ):
            version = len(chosen)
            if heap[0][2] != version:
                # Refresh a small chunk of stale tops in one vectorised
                # subset-gain call; fresh entries caught in the chunk go
                # straight back unchanged.
                stale: list[int] = []
                while heap and len(stale) < _LAZY_CHUNK and heap[0][2] != version:
                    stale.append(heapq.heappop(heap)[1])
                fresh_gains = self.gains_for(
                    np.asarray(stale, dtype=np.intp), covered
                )
                evaluations += len(stale)
                for set_id, gain in zip(stale, fresh_gains.tolist()):
                    heapq.heappush(heap, (-gain, set_id, version))
                continue
            neg_gain, set_id, _ = heapq.heappop(heap)
            gain = -neg_gain
            if gain <= 0:
                break
            chosen.append(set_id)
            gains_log.append(gain)
            covered = np.bitwise_or(covered, self._packed[set_id])
            covered_count += gain
        return chosen, covered_count, gains_log, evaluations

    def greedy_k_cover(
        self, k: int, *, lazy: bool = True, forbidden: Iterable[int] = ()
    ) -> tuple[list[int], int]:
        """Vectorised greedy k-cover; returns (selection, coverage).

        ``lazy=True`` (default) uses the CELF max-heap of stale upper bounds;
        ``lazy=False`` recomputes all ``n`` marginal gains every step.  Both
        resolve ties to the smallest set id among the maximal-gain
        candidates — the same policy as
        :func:`repro.offline.greedy.greedy_k_cover` — so all the greedy
        paths produce identical selections (property-tested), and switching
        backends or laziness never changes a reported result.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        selected, covered_count, _, _ = self.greedy(
            max_sets=k, target_coverage=None, forbidden=forbidden, lazy=lazy
        )
        return selected, covered_count

    def evaluate_many(
        self, families: Sequence[Iterable[int] | np.ndarray] | np.ndarray
    ) -> list[int]:
        """Coverage of several families (convenience for sweeps).

        A 2-D integer array evaluates directly as one stacked OR-reduction
        over a ``(families, sets, lanes)`` gather — no per-family Python
        objects at all.  Sequences of equal-length non-empty families take
        the same stacked path; ragged inputs fall back to per-family
        evaluation.
        """
        if isinstance(families, np.ndarray) and families.ndim == 2:
            if families.shape[0] == 0 or families.shape[1] == 0:
                return [0] * families.shape[0]
            gathered = self._packed[families.astype(np.intp, copy=False)]
            unions = np.bitwise_or.reduce(gathered, axis=1)
            return self._backend.popcount(unions, 1).tolist()
        rows = [self._as_index(family) for family in families]
        lengths = {row.size for row in rows}
        if len(lengths) == 1 and lengths != {0}:
            gathered = self._packed[np.stack(rows)]
            unions = np.bitwise_or.reduce(gathered, axis=1)
            return self._backend.popcount(unions, 1).tolist()
        return [self.coverage(row) for row in rows]


class KernelCache:
    """Per-graph cache of packed kernels, one per *canonical* backend name.

    The packing step is the expensive part of answering a query against an
    already-built sketch, and the packed rows are immutable — so a sketch
    held by the serving layer keeps one :class:`BitsetCoverage` per backend
    and every subsequent query (any ``k``, any forbidden set) reuses it.
    ``"auto"`` and the concrete backend it resolves to share one slot, so a
    client asking for ``"auto"`` and one asking for ``"words"`` never pack
    the same graph twice.

    Mirrors :func:`kernel_for`: ``backend=None`` and empty graphs yield
    ``None`` (the set-based path / nothing to evaluate).  Concurrent lookups
    from the thread backend are safe — at worst two threads both pack the
    same backend once and one dict assignment wins; both objects are
    read-only and bit-identical.
    """

    def __init__(self, graph: BipartiteGraph) -> None:
        self._graph = graph
        self._kernels: dict[str, BitsetCoverage] = {}

    @property
    def graph(self) -> BipartiteGraph:
        """The graph whose kernels are cached."""
        return self._graph

    def get(self, backend: str | KernelBackend | None) -> "BitsetCoverage | None":
        """The cached kernel for ``backend``, packing on first use."""
        if backend is None or self._graph.num_edges == 0:
            return None
        name = canonical_backend_name(backend)
        kernel = self._kernels.get(name)
        if kernel is None:
            kernel = BitsetCoverage(self._graph, backend=name)
            self._kernels[name] = kernel
        return kernel

    def __len__(self) -> int:
        return len(self._kernels)

    @property
    def nbytes(self) -> int:
        """Total bytes of packed rows across all cached backends."""
        return sum(kernel.nbytes for kernel in self._kernels.values())

    def backends(self) -> tuple[str, ...]:
        """Canonical names of the backends packed so far (sorted)."""
        return tuple(sorted(self._kernels))
