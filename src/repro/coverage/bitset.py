"""Vectorised coverage evaluation with packed bitsets.

Greedy, local search and the experiment sweeps evaluate ``C(S)`` thousands of
times; the pure-Python set unions in :class:`BipartiteGraph` are fine for
streaming-sized sketches but become the bottleneck for large offline
reference runs.  Following the HPC guidance (vectorise the hot loop, keep the
algorithmic code unchanged), :class:`BitsetCoverage` packs every set's
membership into a ``numpy`` bit array (``np.packbits``) so that

* union of a family  = bitwise OR over rows,
* coverage value     = ``popcount`` of the union (via ``bincount`` on bytes),
* marginal gain      = popcount of ``candidate AND NOT covered``,

all as whole-array operations.  The evaluator is a drop-in read-only
companion to a :class:`BipartiteGraph`: results are bit-for-bit identical
(property-tested) and substantially faster on dense instances, especially for
workloads that evaluate many families against the same graph
(``benchmarks/bench_offline_throughput.py`` quantifies the difference).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.coverage.bipartite import BipartiteGraph

__all__ = ["BitsetCoverage"]

#: Lookup table with the popcount of every byte value (fallback path).
_POPCOUNT_TABLE = np.array([bin(value).count("1") for value in range(256)], dtype=np.int64)

#: numpy >= 2.0 ships a native popcount ufunc; keep the byte table as the
#: fallback for older numpy builds.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount_bytes(rows: np.ndarray, axis: int | None = None) -> np.ndarray | int:
    """Popcount of packed byte rows, summed over ``axis`` (or everything)."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(rows).sum(axis=axis, dtype=np.int64)
    return _POPCOUNT_TABLE[rows].sum(axis=axis)


class BitsetCoverage:
    """Packed-bitset evaluator of the coverage function of a fixed graph.

    Parameters
    ----------
    graph:
        The bipartite membership graph; it is snapshotted at construction
        (later mutations of the graph are not reflected).
    """

    def __init__(self, graph: BipartiteGraph) -> None:
        self._num_sets = graph.num_sets
        elements = sorted(graph.elements())
        self._element_index = {element: i for i, element in enumerate(elements)}
        self._num_elements = len(elements)
        width = max(1, self._num_elements)
        dense = np.zeros((graph.num_sets, width), dtype=bool)
        for set_id in graph.set_ids():
            for element in graph.elements_of(set_id):
                dense[set_id, self._element_index[element]] = True
        # Rows are packed along the element axis: shape (n, ceil(m/8)) bytes.
        self._packed = np.packbits(dense, axis=1)
        self._set_sizes = dense.sum(axis=1).astype(np.int64)

    # ------------------------------------------------------------------ #
    # basic facts
    # ------------------------------------------------------------------ #
    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self._num_sets

    @property
    def num_elements(self) -> int:
        """Number of elements in the snapshot."""
        return self._num_elements

    def set_size(self, set_id: int) -> int:
        """``|S|`` for one set."""
        return int(self._set_sizes[set_id])

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _popcount(row: np.ndarray) -> int:
        return int(_popcount_bytes(row))

    def union_bits(self, set_ids: Iterable[int]) -> np.ndarray:
        """The packed union bit-row of a family of sets."""
        ids = [int(s) for s in set_ids]
        if not ids:
            return np.zeros(self._packed.shape[1], dtype=np.uint8)
        return np.bitwise_or.reduce(self._packed[ids], axis=0)

    def coverage(self, set_ids: Iterable[int]) -> int:
        """``C(S) = |∪ S|``."""
        return self._popcount(self.union_bits(set_ids))

    def coverage_fraction(self, set_ids: Iterable[int]) -> float:
        """Fraction of the snapshot's elements covered."""
        if self._num_elements == 0:
            return 1.0
        return self.coverage(set_ids) / self._num_elements

    def marginal_gains(self, covered_bits: np.ndarray) -> np.ndarray:
        """Marginal gain of *every* set against an already-covered bit-row.

        This is the vectorised inner step of greedy: one call evaluates all
        ``n`` candidates.
        """
        remaining = np.bitwise_and(self._packed, np.bitwise_not(covered_bits))
        return _popcount_bytes(remaining, axis=1)

    def greedy_k_cover(self, k: int) -> tuple[list[int], int]:
        """Vectorised greedy k-cover; returns (selection, coverage).

        Matches the selection quality of
        :func:`repro.offline.greedy.greedy_k_cover` (ties may break
        differently; the achieved coverage is the same up to ties).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        covered = np.zeros(self._packed.shape[1], dtype=np.uint8)
        chosen: list[int] = []
        available = np.ones(self._num_sets, dtype=bool)
        for _ in range(min(k, self._num_sets)):
            gains = self.marginal_gains(covered)
            gains[~available] = -1
            best = int(np.argmax(gains))
            if gains[best] <= 0:
                break
            chosen.append(best)
            available[best] = False
            covered = np.bitwise_or(covered, self._packed[best])
        return chosen, self._popcount(covered)

    def evaluate_many(self, families: Sequence[Iterable[int]]) -> list[int]:
        """Coverage of several families (convenience for sweeps).

        When every family has the same non-zero size (the common sweep shape,
        e.g. all size-k candidates), the unions are computed as one stacked
        OR-reduction over a ``(families, sets, bytes)`` gather instead of a
        Python loop; ragged inputs fall back to per-family evaluation.
        """
        ids = [[int(s) for s in family] for family in families]
        lengths = {len(family) for family in ids}
        if len(lengths) == 1 and lengths != {0}:
            gathered = self._packed[np.array(ids, dtype=np.intp)]
            unions = np.bitwise_or.reduce(gathered, axis=1)
            return [int(count) for count in _popcount_bytes(unions, axis=1)]
        return [self.coverage(family) for family in ids]
