"""Pluggable packing/popcount backends for the bitset coverage kernels.

:class:`repro.coverage.bitset.BitsetCoverage` evaluates the coverage function
with three primitive operations on packed bit rows — OR (union), AND-NOT
(residual membership) and popcount (cardinality).  The first two are dtype
agnostic whole-array numpy ops; packing layout and popcount are not, and that
is exactly what a :class:`KernelBackend` encapsulates:

* ``"bytes"`` — the original layout: rows packed 8 elements per ``uint8``
  lane with ``np.packbits``, popcounts via ``np.bitwise_count`` (byte lookup
  table on older numpy).
* ``"words"`` — rows packed 64 elements per ``uint64`` lane (the byte packing
  padded to a whole number of words and reinterpreted), so union / AND-NOT /
  marginal-gain kernels touch 8x fewer lanes; popcounts via
  ``np.bitwise_count`` on the words, falling back to the byte table over a
  ``uint8`` view.
* ``"auto"`` — resolves to ``"words"`` when numpy ships the native popcount
  ufunc, and to ``"bytes"`` otherwise.

Backends register by name in a :class:`~repro.utils.registry.NamedRegistry`
(mirroring the solver registry), so an accelerator-backed kernel can plug in
with ``register_kernel_backend`` and immediately be selectable through
``BitsetCoverage(graph, backend=...)``, ``ProblemSpec.coverage_backend`` and
the CLI's ``--coverage-backend``.  The two shipped backends are bit-for-bit
identical on every query (property-tested).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.errors import SpecError
from repro.obs import clock
from repro.utils.registry import NamedRegistry

__all__ = [
    "KernelBackend",
    "register_kernel_backend",
    "unregister_kernel_backend",
    "get_kernel_backend",
    "resolve_kernel_backend",
    "canonical_backend_name",
    "list_kernel_backends",
    "kernel_backend_choices",
    "uninstrumented_backend",
]

#: Lookup table with the popcount of every byte value (fallback path).
_POPCOUNT_TABLE = np.array([bin(value).count("1") for value in range(256)], dtype=np.int64)

#: numpy >= 2.0 ships a native popcount ufunc; the byte table is the fallback.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


@dataclass(frozen=True)
class KernelBackend:
    """One packing/popcount strategy for the bitset coverage kernels.

    Attributes
    ----------
    name:
        Registry key (``"bytes"``, ``"words"``, ...).
    dtype:
        Lane dtype of packed rows; union/AND-NOT run on arrays of this dtype.
    elements_per_lane:
        How many ground-set elements one lane encodes.
    summary:
        One-line description for tables and diagnostics.
    pack:
        ``(num_rows, num_elements) bool -> (num_rows, lanes) dtype`` packing.
    popcount:
        ``(rows, axis) -> int64`` summed popcount of packed rows over
        ``axis`` (or everything when ``axis`` is None).
    """

    name: str
    dtype: np.dtype
    elements_per_lane: int
    summary: str
    pack: Callable[[np.ndarray], np.ndarray]
    popcount: Callable[[np.ndarray, int | None], np.ndarray | int]

    def empty_row(self, num_lanes: int) -> np.ndarray:
        """An all-zero packed row of ``num_lanes`` lanes."""
        return np.zeros(num_lanes, dtype=self.dtype)


def _pack_bytes(dense: np.ndarray) -> np.ndarray:
    return np.packbits(dense, axis=1)


def _popcount_bytes(rows: np.ndarray, axis: int | None = None) -> np.ndarray | int:
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(rows).sum(axis=axis, dtype=np.int64)
    return _POPCOUNT_TABLE[rows].sum(axis=axis)


def _pack_words(dense: np.ndarray) -> np.ndarray:
    packed = np.packbits(dense, axis=1)
    byte_lanes = packed.shape[1]
    word_lanes = -(-byte_lanes // 8)
    if byte_lanes != word_lanes * 8:
        padded = np.zeros((packed.shape[0], word_lanes * 8), dtype=np.uint8)
        padded[:, :byte_lanes] = packed
        packed = padded
    return np.ascontiguousarray(packed).view(np.uint64)


def _popcount_words(rows: np.ndarray, axis: int | None = None) -> np.ndarray | int:
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(rows).sum(axis=axis, dtype=np.int64)
    # Byte-table fallback: reinterpret each word as its 8 bytes.  The view
    # multiplies the last-axis length by 8, so per-row sums stay per-row.
    bytes_view = np.ascontiguousarray(rows).view(np.uint8)
    return _POPCOUNT_TABLE[bytes_view].sum(axis=axis)


_REGISTRY: NamedRegistry[KernelBackend] = NamedRegistry(
    "coverage kernel backend", SpecError, "repro.coverage.list_kernel_backends()"
)

#: Kernel-primitive timings, observed only while tracing is enabled; the
#: disabled path through :func:`_timed_kernel_op` is one enabled() check.
_PACK_SECONDS = obs.global_metrics().histogram(
    "kernel.pack_seconds", help="per-call packing time of bitset rows"
)
_POPCOUNT_SECONDS = obs.global_metrics().histogram(
    "kernel.popcount_seconds", help="per-call popcount reduction time"
)


def _timed_kernel_op(
    fn: Callable[..., "np.ndarray | int"], histogram: "obs.Histogram"
) -> Callable[..., "np.ndarray | int"]:
    """Wrap a pack/popcount primitive with an enabled-gated timer.

    ``functools.wraps`` keeps the raw callable reachable as ``__wrapped__``
    (the overhead benchmark builds its no-obs baseline from it via
    :func:`uninstrumented_backend`).
    """

    @functools.wraps(fn)
    def wrapper(*args: object, **kwargs: object) -> "np.ndarray | int":
        if not obs.enabled():
            return fn(*args, **kwargs)
        start = clock.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            histogram.observe(clock.perf_counter() - start)

    return wrapper


def register_kernel_backend(backend: KernelBackend) -> KernelBackend:
    """Register a backend under its name; duplicates raise :class:`SpecError`."""
    if backend.name == "auto":
        raise SpecError("'auto' is reserved for backend auto-selection")
    _REGISTRY.add(backend.name, backend)
    return backend


def unregister_kernel_backend(name: str) -> None:
    """Remove a registered backend (mainly for tests and plugins)."""
    _REGISTRY.remove(name)


def get_kernel_backend(name: str) -> KernelBackend:
    """Look up a backend by exact name (``"auto"`` is not a concrete backend)."""
    return _REGISTRY.get(name)


def list_kernel_backends() -> list[str]:
    """Sorted names of the registered backends (excluding ``"auto"``)."""
    return _REGISTRY.names()


def resolve_kernel_backend(backend: str | KernelBackend = "auto") -> KernelBackend:
    """Resolve a backend name (or pass an instance through).

    ``"auto"`` picks the word backend when numpy has a native popcount ufunc
    and the byte backend otherwise.
    """
    if isinstance(backend, KernelBackend):
        return backend
    if backend == "auto":
        return get_kernel_backend("words" if _HAS_BITWISE_COUNT else "bytes")
    return get_kernel_backend(backend)


register_kernel_backend(
    KernelBackend(
        name="bytes",
        dtype=np.dtype(np.uint8),
        elements_per_lane=8,
        summary="uint8 lanes via np.packbits (8 elements per lane)",
        pack=_timed_kernel_op(_pack_bytes, _PACK_SECONDS),
        popcount=_timed_kernel_op(_popcount_bytes, _POPCOUNT_SECONDS),
    )
)

register_kernel_backend(
    KernelBackend(
        name="words",
        dtype=np.dtype(np.uint64),
        elements_per_lane=64,
        summary="uint64 lanes (64 elements per lane, 8x fewer lanes than bytes)",
        pack=_timed_kernel_op(_pack_words, _PACK_SECONDS),
        popcount=_timed_kernel_op(_popcount_words, _POPCOUNT_SECONDS),
    )
)


def uninstrumented_backend(name: str) -> KernelBackend:
    """A registered backend with the raw (never-timed) pack/popcount.

    The obs overhead benchmark measures the instrumentation's disabled path
    against a truly untouched kernel; unwrapping ``__wrapped__`` recovers
    the primitives exactly as registered before :func:`_timed_kernel_op`.
    """
    backend = get_kernel_backend(name)
    return KernelBackend(
        name=backend.name,
        dtype=backend.dtype,
        elements_per_lane=backend.elements_per_lane,
        summary=backend.summary,
        pack=getattr(backend.pack, "__wrapped__", backend.pack),
        popcount=getattr(backend.popcount, "__wrapped__", backend.popcount),
    )


def kernel_backend_choices() -> tuple[str, ...]:
    """Valid values for user-facing backend options (CLI, specs)."""
    return ("auto", *list_kernel_backends())


def canonical_backend_name(backend: str | KernelBackend = "auto") -> str:
    """The concrete registered name a backend request resolves to.

    ``"auto"`` and the concrete name it currently resolves to are the *same*
    kernel, so caches keyed by canonical name share one packed copy between
    ``backend="auto"`` and ``backend="words"`` (or ``"bytes"``) callers.
    """
    return resolve_kernel_backend(backend).name
