"""Coverage substrate: set systems, bipartite graphs, coverage functions."""

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.bitset import BitsetCoverage
from repro.coverage.coverage_fn import CoverageFunction
from repro.coverage.instance import CoverageInstance, ProblemKind
from repro.coverage.io import (
    ColumnarEdges,
    columnar_from_edge_list,
    load_system,
    open_columnar,
    read_edge_list,
    save_system,
    system_from_json,
    system_to_json,
    write_columnar,
    write_edge_list,
)
from repro.coverage.kernels import (
    KernelBackend,
    get_kernel_backend,
    kernel_backend_choices,
    list_kernel_backends,
    register_kernel_backend,
    resolve_kernel_backend,
)
from repro.coverage.setsystem import SetSystem

__all__ = [
    "BipartiteGraph",
    "BitsetCoverage",
    "ColumnarEdges",
    "CoverageFunction",
    "CoverageInstance",
    "KernelBackend",
    "ProblemKind",
    "SetSystem",
    "columnar_from_edge_list",
    "get_kernel_backend",
    "kernel_backend_choices",
    "list_kernel_backends",
    "load_system",
    "open_columnar",
    "read_edge_list",
    "register_kernel_backend",
    "resolve_kernel_backend",
    "save_system",
    "system_from_json",
    "system_to_json",
    "write_columnar",
    "write_edge_list",
]
