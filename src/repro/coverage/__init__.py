"""Coverage substrate: set systems, bipartite graphs, coverage functions."""

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.bitset import BitsetCoverage
from repro.coverage.coverage_fn import CoverageFunction
from repro.coverage.instance import CoverageInstance, ProblemKind
from repro.coverage.io import (
    load_system,
    read_edge_list,
    save_system,
    system_from_json,
    system_to_json,
    write_edge_list,
)
from repro.coverage.setsystem import SetSystem

__all__ = [
    "BipartiteGraph",
    "BitsetCoverage",
    "CoverageFunction",
    "CoverageInstance",
    "ProblemKind",
    "SetSystem",
    "load_system",
    "read_edge_list",
    "save_system",
    "system_from_json",
    "system_to_json",
    "write_edge_list",
]
