"""Problem instances: a set system plus problem parameters and ground truth.

An instance bundles the input graph with the kind of coverage problem posed
on it (k-cover, set cover, set cover with outliers), the relevant parameters
and — when the generator planted one — a known optimum that experiments can
use as ground truth instead of re-solving the instance exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.coverage.bipartite import BipartiteGraph
from repro.errors import InvalidInstanceError
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["ProblemKind", "CoverageInstance"]


class ProblemKind(str, enum.Enum):
    """Which of the three coverage problems an instance poses."""

    K_COVER = "k_cover"
    SET_COVER = "set_cover"
    SET_COVER_OUTLIERS = "set_cover_outliers"


@dataclass
class CoverageInstance:
    """A coverage problem instance.

    Attributes
    ----------
    graph:
        The bipartite membership graph (``n`` sets over ``m`` elements).
    kind:
        Which problem is posed on the graph.
    k:
        Cardinality budget for k-cover (ignored by the set cover problems).
    outlier_fraction:
        The ``λ`` of set cover with outliers (ignored otherwise).
    planted_solution:
        Optional set ids of a solution the generator planted; for k-cover it
        is a (near-)optimal size-``k`` family, for set cover a full cover.
    planted_value:
        Coverage value of the planted solution (cached for convenience).
    metadata:
        Free-form information recorded by the generator (sizes, seeds, ...).
    """

    graph: BipartiteGraph
    kind: ProblemKind = ProblemKind.K_COVER
    k: int = 1
    outlier_fraction: float = 0.0
    planted_solution: tuple[int, ...] | None = None
    planted_value: int | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.graph, BipartiteGraph):
            raise InvalidInstanceError("graph must be a BipartiteGraph")
        if self.graph.num_elements == 0:
            raise InvalidInstanceError("instance has no elements (empty ground set)")
        self.kind = ProblemKind(self.kind)
        check_positive_int(self.k, "k")
        check_fraction(self.outlier_fraction, "outlier_fraction")
        if self.k > self.graph.num_sets:
            raise InvalidInstanceError(
                f"k={self.k} exceeds the number of sets n={self.graph.num_sets}"
            )
        if self.planted_solution is not None:
            self.planted_solution = tuple(int(s) for s in self.planted_solution)
            for set_id in self.planted_solution:
                if not 0 <= set_id < self.graph.num_sets:
                    raise InvalidInstanceError(
                        f"planted solution references unknown set id {set_id}"
                    )
            if self.planted_value is None:
                self.planted_value = self.graph.coverage(self.planted_solution)

    # ------------------------------------------------------------------ #
    # sizes
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of sets."""
        return self.graph.num_sets

    @property
    def m(self) -> int:
        """Number of elements."""
        return self.graph.num_elements

    @property
    def num_edges(self) -> int:
        """Number of membership edges."""
        return self.graph.num_edges

    # ------------------------------------------------------------------ #
    # evaluation helpers
    # ------------------------------------------------------------------ #
    def coverage(self, set_ids: Iterable[int]) -> int:
        """Coverage value of a candidate solution on the *original* graph."""
        return self.graph.coverage(set_ids)

    def coverage_fraction(self, set_ids: Iterable[int]) -> float:
        """Covered fraction of the ground set."""
        return self.graph.coverage_fraction(set_ids)

    def is_full_cover(self, set_ids: Iterable[int]) -> bool:
        """Whether the sets cover every element."""
        return self.graph.coverage(set_ids) == self.graph.num_elements

    def satisfies_outliers(self, set_ids: Iterable[int], lam: float | None = None) -> bool:
        """Whether the sets cover at least a ``1 − λ`` fraction of elements."""
        lam = self.outlier_fraction if lam is None else lam
        return self.coverage_fraction(set_ids) >= 1.0 - lam - 1e-12

    def reference_value(self) -> int | None:
        """Best known objective value: the planted value when available."""
        return self.planted_value

    def with_kind(
        self,
        kind: ProblemKind,
        *,
        k: int | None = None,
        outlier_fraction: float | None = None,
    ) -> "CoverageInstance":
        """Return a copy of the instance posing a different problem."""
        return CoverageInstance(
            graph=self.graph,
            kind=kind,
            k=self.k if k is None else k,
            outlier_fraction=(
                self.outlier_fraction if outlier_fraction is None else outlier_fraction
            ),
            planted_solution=self.planted_solution,
            planted_value=self.planted_value,
            metadata=dict(self.metadata),
        )

    def describe(self) -> Mapping[str, Any]:
        """Summary dict used by reports and logs."""
        return {
            "kind": self.kind.value,
            "n": self.n,
            "m": self.m,
            "edges": self.num_edges,
            "k": self.k,
            "outlier_fraction": self.outlier_fraction,
            "planted_value": self.planted_value,
            **{f"meta.{k}": v for k, v in sorted(self.metadata.items())},
        }
