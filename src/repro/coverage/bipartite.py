"""Bipartite set/element graph — the paper's model of a coverage instance.

The paper models a coverage instance as a bipartite graph ``G`` with the
family of sets :math:`\\mathcal{S}` on one side and the ground set of
elements :math:`\\mathcal{E}` on the other; a set vertex is adjacent to the
elements it contains, and the coverage function is
``C(S) = |Γ(G, S)|`` (Section 1.1).

:class:`BipartiteGraph` is the low-level, integer-id representation used by
every algorithm in the library: sets are ``0 .. num_sets-1`` and elements are
arbitrary non-negative integers (so a sketch that keeps only a few elements
does not need to re-index them).  Label handling lives one level up in
:class:`repro.coverage.setsystem.SetSystem`.
"""

from __future__ import annotations

import operator
from typing import Iterable, Iterator, Mapping

from repro.errors import InvalidInstanceError
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["BipartiteGraph"]


class BipartiteGraph:
    """Adjacency structure between ``num_sets`` sets and integer elements.

    The structure is mutable (edges can be added and elements removed) so the
    same class backs both full input instances and the paper's sketches,
    which are themselves subgraphs with some elements and edges discarded.

    Parameters
    ----------
    num_sets:
        Number of set vertices; set ids are ``0 .. num_sets - 1``.

    Notes
    -----
    * Parallel edges are ignored: adding the same (set, element) edge twice
      leaves the graph unchanged and reports that nothing was added.
    * ``num_elements`` counts elements incident to at least one edge, which
      matches the paper's convention that "there is no isolated vertex in
      :math:`\\mathcal{E}`".
    """

    __slots__ = ("_num_sets", "_set_adj", "_elem_adj", "_num_edges")

    def __init__(self, num_sets: int) -> None:
        check_positive_int(num_sets, "num_sets")
        self._num_sets = num_sets
        self._set_adj: list[set[int]] = [set() for _ in range(num_sets)]
        self._elem_adj: dict[int, set[int]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_sets(
        cls, sets: Mapping[int, Iterable[int]] | Iterable[Iterable[int]], num_sets: int | None = None
    ) -> "BipartiteGraph":
        """Build a graph from a mapping (or list) of set id → member elements.

        When ``sets`` is a plain iterable its position is the set id.  The
        number of set vertices defaults to the number of entries (or the
        largest key + 1 for mappings) but can be forced larger with
        ``num_sets`` so empty sets at the tail are representable.
        """
        if isinstance(sets, Mapping):
            items = list(sets.items())
            inferred = (max(sets) + 1) if sets else 0
        else:
            items = list(enumerate(sets))
            inferred = len(items)
        total = num_sets if num_sets is not None else inferred
        if total <= 0:
            raise InvalidInstanceError("a coverage instance needs at least one set")
        graph = cls(total)
        for set_id, members in items:
            for element in members:
                graph.add_edge(set_id, element)
        return graph

    def copy(self) -> "BipartiteGraph":
        """Return a deep copy (adjacency sets are copied)."""
        clone = BipartiteGraph(self._num_sets)
        clone._set_adj = [set(members) for members in self._set_adj]
        clone._elem_adj = {e: set(s) for e, s in self._elem_adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, set_id: int, element: int) -> bool:
        """Add the membership edge (set_id, element).

        Returns ``True`` when the edge is new, ``False`` when it already
        existed (duplicate arrivals in a stream are a no-op).
        """
        self._check_set_id(set_id)
        check_non_negative_int(element, "element")
        members = self._set_adj[set_id]
        if element in members:
            return False
        members.add(element)
        self._elem_adj.setdefault(element, set()).add(set_id)
        self._num_edges += 1
        return True

    def remove_element(self, element: int) -> int:
        """Remove an element vertex and all its edges; return #edges removed."""
        owners = self._elem_adj.pop(element, None)
        if owners is None:
            return 0
        for set_id in owners:
            self._set_adj[set_id].discard(element)
        removed = len(owners)
        self._num_edges -= removed
        return removed

    def remove_edge(self, set_id: int, element: int) -> bool:
        """Remove one membership edge; returns ``True`` if it was present."""
        self._check_set_id(set_id)
        members = self._set_adj[set_id]
        if element not in members:
            return False
        members.discard(element)
        owners = self._elem_adj[element]
        owners.discard(set_id)
        if not owners:
            del self._elem_adj[element]
        self._num_edges -= 1
        return True

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_sets(self) -> int:
        """Number of set vertices (``n`` in the paper)."""
        return self._num_sets

    @property
    def num_elements(self) -> int:
        """Number of non-isolated element vertices currently present."""
        return len(self._elem_adj)

    @property
    def num_edges(self) -> int:
        """Number of membership edges currently stored."""
        return self._num_edges

    def elements(self) -> Iterator[int]:
        """Iterate over the element ids with at least one edge."""
        return iter(self._elem_adj)

    def set_ids(self) -> range:
        """The range of valid set ids."""
        return range(self._num_sets)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all (set_id, element) edges."""
        for set_id, members in enumerate(self._set_adj):
            for element in members:
                yield (set_id, element)

    def elements_of(self, set_id: int) -> frozenset[int]:
        """The elements contained in one set."""
        self._check_set_id(set_id)
        return frozenset(self._set_adj[set_id])

    def sets_of(self, element: int) -> frozenset[int]:
        """The sets containing one element (empty if the element is absent)."""
        return frozenset(self._elem_adj.get(element, frozenset()))

    def set_degree(self, set_id: int) -> int:
        """Size of one set (its degree on the set side)."""
        self._check_set_id(set_id)
        return len(self._set_adj[set_id])

    def element_degree(self, element: int) -> int:
        """Number of sets containing the element (0 if absent)."""
        return len(self._elem_adj.get(element, ()))

    def has_element(self, element: int) -> bool:
        """Whether the element currently has at least one edge."""
        return element in self._elem_adj

    def neighbors(self, set_ids: Iterable[int]) -> set[int]:
        """``Γ(G, S)``: the union of the member elements of ``set_ids``."""
        covered: set[int] = set()
        for set_id in set_ids:
            self._check_set_id(set_id)
            covered |= self._set_adj[set_id]
        return covered

    def coverage(self, set_ids: Iterable[int]) -> int:
        """``|Γ(G, S)|``: the coverage value of a subfamily of sets."""
        return len(self.neighbors(set_ids))

    def coverage_fraction(self, set_ids: Iterable[int]) -> float:
        """Fraction of the current elements covered by ``set_ids``."""
        total = self.num_elements
        if total == 0:
            return 1.0
        return self.coverage(set_ids) / total

    def uncovered_elements(self, set_ids: Iterable[int]) -> set[int]:
        """Elements not covered by the given sets."""
        covered = self.neighbors(set_ids)
        return {element for element in self._elem_adj if element not in covered}

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def induced_on_elements(self, elements: Iterable[int]) -> "BipartiteGraph":
        """Subgraph keeping all sets but only the given elements.

        This is how ``H_p`` is defined in Section 2: keep every set vertex
        and the elements whose hash is at most ``p``.
        """
        keep = set(elements)
        sub = BipartiteGraph(self._num_sets)
        for element in keep:
            for set_id in self._elem_adj.get(element, ()):
                sub.add_edge(set_id, element)
        return sub

    def without_elements(self, elements: Iterable[int]) -> "BipartiteGraph":
        """Subgraph with the given elements removed (residual instance).

        Algorithm 6 peels covered elements off between passes; this helper
        builds the residual graph ``G_{i+1}``.
        """
        drop = set(elements)
        sub = BipartiteGraph(self._num_sets)
        for element, owners in self._elem_adj.items():
            if element in drop:
                continue
            for set_id in owners:
                sub.add_edge(set_id, element)
        return sub

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict[int, frozenset[int]]:
        """Mapping set id → frozenset of member elements."""
        return {set_id: frozenset(members) for set_id, members in enumerate(self._set_adj)}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return self._num_sets == other._num_sets and self._set_adj == other._set_adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteGraph(num_sets={self._num_sets}, "
            f"num_elements={self.num_elements}, num_edges={self._num_edges})"
        )

    def _check_set_id(self, set_id: int) -> None:
        if isinstance(set_id, bool):
            raise TypeError("set_id must be an integer, got bool")
        try:
            set_id = operator.index(set_id)
        except TypeError as exc:
            raise TypeError(
                f"set_id must be an integer, got {type(set_id).__name__}"
            ) from exc
        if not 0 <= set_id < self._num_sets:
            raise InvalidInstanceError(
                f"set id {set_id} out of range [0, {self._num_sets})"
            )
