"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError`, so callers can
catch one base class.  Streaming-specific failures (space budget violations,
pass violations) have their own subclasses because the benchmark harness
treats them differently from plain usage errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "SpaceBudgetExceeded",
    "PassBudgetExceeded",
    "InfeasibleError",
    "StreamExhausted",
    "SpecError",
    "UnknownSolverError",
    "UnknownDatasetError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class InvalidInstanceError(ReproError):
    """A coverage instance is malformed (e.g. empty ground set, bad ids)."""


class SpaceBudgetExceeded(ReproError):
    """A streaming algorithm tried to store more than its space budget."""

    def __init__(self, used: int, budget: int, what: str = "edges") -> None:
        super().__init__(f"space budget exceeded: used {used} {what}, budget {budget}")
        self.used = used
        self.budget = budget
        self.what = what


class PassBudgetExceeded(ReproError):
    """A streaming algorithm requested more passes than allowed."""

    def __init__(self, used: int, budget: int) -> None:
        super().__init__(f"pass budget exceeded: used {used} passes, budget {budget}")
        self.used = used
        self.budget = budget


class InfeasibleError(ReproError):
    """The requested problem has no feasible solution.

    Raised e.g. by set cover when the family does not cover the ground set.
    """


class StreamExhausted(ReproError):
    """A pass was requested on a stream that cannot be replayed."""


class SpecError(ReproError, ValueError):
    """A run/problem/solver/stream spec is malformed or inconsistent.

    Subclasses :class:`ValueError` so spec mistakes surface as ordinary
    usage errors to callers (e.g. the CLI's non-zero exit path) while still
    being catchable under :class:`ReproError`.
    """


class UnknownSolverError(SpecError):
    """A solver name was not found in the :mod:`repro.api` registry."""


class UnknownDatasetError(SpecError):
    """A dataset name was not found in the :mod:`repro.datasets` registry."""
