"""Stream event types.

The paper's central modelling choice is the **edge-arrival** model: the
stream consists of membership edges (set, element) in arbitrary order, as
opposed to the **set-arrival** model where a set arrives together with the
full list of its elements.  Both event types are defined here so algorithms
can declare which model they consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["EdgeArrival", "SetArrival"]


@dataclass(frozen=True, slots=True)
class EdgeArrival:
    """One membership edge ``(set_id, element)`` arriving on the stream."""

    set_id: int
    element: int

    def as_tuple(self) -> tuple[int, int]:
        """The edge as a plain ``(set_id, element)`` tuple."""
        return (self.set_id, self.element)


@dataclass(frozen=True, slots=True)
class SetArrival:
    """A whole set arriving with the full list of its member elements."""

    set_id: int
    elements: tuple[int, ...]

    @classmethod
    def from_iterable(cls, set_id: int, elements: Iterable[int]) -> "SetArrival":
        """Build a set-arrival event from any iterable of elements."""
        return cls(set_id=set_id, elements=tuple(elements))

    def edges(self) -> list[EdgeArrival]:
        """Expand the set arrival into the equivalent edge arrivals."""
        return [EdgeArrival(self.set_id, element) for element in self.elements]

    def __len__(self) -> int:
        return len(self.elements)
