"""Columnar event batches for the vectorized streaming path.

A scalar stream hands algorithms one :class:`~repro.streaming.events.EdgeArrival`
or :class:`~repro.streaming.events.SetArrival` per Python call, which makes
update throughput interpreter-bound.  :class:`EventBatch` is the columnar
alternative: a contiguous chunk of one pass, stored as numpy ``uint64``
columns so a whole batch can be hashed, threshold-filtered or scattered with
whole-array operations.

Two layouts share the one class, mirroring the two arrival models:

* **edge batches** (``offsets is None``): ``set_ids[i]`` / ``elements[i]``
  are the ``i``-th membership edge of the batch.
* **set batches** (``offsets`` given): ``set_ids[j]`` is the ``j``-th arriving
  set and its member elements are ``elements[offsets[j]:offsets[j+1]]`` (the
  standard CSR encoding).

``len(batch)`` counts *events* (edges or set arrivals), so pass-level event
accounting is layout-independent.  :meth:`EventBatch.iter_events` unrolls a
batch back into the scalar event objects — that is the compatibility shim the
runner uses for algorithms that only implement ``process``, and the reference
semantics every native ``process_batch`` implementation must match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.streaming.events import EdgeArrival, SetArrival

__all__ = ["EventBatch"]


@dataclass(frozen=True, eq=False)
class EventBatch:
    """A columnar chunk of stream events (see module docstring).

    ``eq=False``: ndarray fields make the generated ``__eq__``/``__hash__``
    raise instead of comparing, so batches fall back to identity semantics.

    Parameters
    ----------
    set_ids:
        ``uint64`` column: one entry per edge (edge layout) or one per
        arriving set (set layout).
    elements:
        ``uint64`` column of element ids; for the set layout, the
        concatenation of every arriving set's members.
    offsets:
        ``None`` for the edge layout; for the set layout, an ``int64`` array
        of length ``len(set_ids) + 1`` with ``offsets[0] == 0`` and
        ``offsets[-1] == len(elements)`` delimiting each set's member run.
    """

    set_ids: np.ndarray
    elements: np.ndarray
    offsets: np.ndarray | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "set_ids", np.asarray(self.set_ids, dtype=np.uint64))
        object.__setattr__(self, "elements", np.asarray(self.elements, dtype=np.uint64))
        if self.set_ids.ndim != 1 or self.elements.ndim != 1:
            raise ValueError("set_ids and elements must be one-dimensional arrays")
        if self.offsets is None:
            if len(self.set_ids) != len(self.elements):
                raise ValueError(
                    "edge batch requires parallel columns: "
                    f"{len(self.set_ids)} set ids vs {len(self.elements)} elements"
                )
            return
        offsets = np.asarray(self.offsets, dtype=np.int64)
        object.__setattr__(self, "offsets", offsets)
        if offsets.ndim != 1 or len(offsets) != len(self.set_ids) + 1:
            raise ValueError(
                f"set batch requires len(set_ids) + 1 = {len(self.set_ids) + 1} "
                f"offsets, got {len(offsets)}"
            )
        if len(offsets) and (offsets[0] != 0 or offsets[-1] != len(self.elements)):
            raise ValueError("offsets must start at 0 and end at len(elements)")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]]) -> "EventBatch":
        """Build an edge batch from ``(set_id, element)`` pairs."""
        pairs = list(edges)
        set_ids = np.fromiter((s for s, _ in pairs), dtype=np.uint64, count=len(pairs))
        elements = np.fromiter((e for _, e in pairs), dtype=np.uint64, count=len(pairs))
        return cls(set_ids, elements)

    @classmethod
    def from_sets(cls, sets: Sequence[tuple[int, Sequence[int]]]) -> "EventBatch":
        """Build a set batch from ``(set_id, members)`` pairs."""
        set_ids = np.fromiter((s for s, _ in sets), dtype=np.uint64, count=len(sets))
        lengths = np.fromiter(
            (len(members) for _, members in sets), dtype=np.int64, count=len(sets)
        )
        offsets = np.zeros(len(sets) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        flat = [int(e) for _, members in sets for e in members]
        elements = np.array(flat, dtype=np.uint64)
        return cls(set_ids, elements, offsets)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> str:
        """``"edge"`` or ``"set"``, matching the arrival models."""
        return "edge" if self.offsets is None else "set"

    def __len__(self) -> int:
        """Number of events (edges, or arriving sets) in the batch."""
        return len(self.set_ids)

    @property
    def num_edges(self) -> int:
        """Number of membership edges carried by the batch."""
        return len(self.elements)

    # ------------------------------------------------------------------ #
    # row selection
    # ------------------------------------------------------------------ #
    def take(self, rows: np.ndarray | Sequence[int]) -> "EventBatch":
        """An edge sub-batch of the given rows, in the given order.

        This is the routing primitive of the distributed map phase: a
        partitioner groups one batch's rows by machine and hands each worker
        ``take(rows)`` — plain numpy fancy indexing, no per-edge tuples.
        Only edge batches support it (a set batch row is a whole CSR run).
        """
        if self.offsets is not None:
            raise TypeError("take() slices edge batches, got a set batch")
        rows = np.asarray(rows, dtype=np.int64)
        return EventBatch(self.set_ids[rows], self.elements[rows])

    # ------------------------------------------------------------------ #
    # scalar compatibility shim
    # ------------------------------------------------------------------ #
    def iter_events(self) -> Iterator[EdgeArrival | SetArrival]:
        """Unroll the batch into scalar events, in stream order.

        This defines the reference semantics of a batch: a native
        ``process_batch`` must be equivalent to feeding these events through
        ``process`` one at a time.
        """
        set_ids = self.set_ids.tolist()
        elements = self.elements.tolist()
        if self.offsets is None:
            for set_id, element in zip(set_ids, elements):
                yield EdgeArrival(set_id, element)
            return
        bounds = self.offsets.tolist()
        for index, set_id in enumerate(set_ids):
            yield SetArrival(
                set_id=set_id, elements=tuple(elements[bounds[index] : bounds[index + 1]])
            )
