"""Replayable edge-arrival and set-arrival streams.

A stream wraps a coverage instance (or an explicit edge list) and yields its
events in a chosen order.  Streams are *replayable*: iterating again yields a
fresh pass, which is what the multi-pass algorithms (Algorithm 6, Demaine- and
Har-Peled-style baselines) need.  The number of passes taken is tracked so
experiments can report it.

Orders
------
``"given"``
    Events in the order the edges were provided (deterministic).
``"random"``
    A fresh uniformly random permutation per pass (seeded).
``"set_grouped"``
    All edges of set 0, then set 1, ... — the edge-arrival encoding of the
    set-arrival model.
``"element_grouped"``
    All edges of one element together — an adversarial order for algorithms
    that implicitly assume sets arrive intact.
``"adversarial_tail"``
    The edges of the planted / largest sets are held back to the very end of
    the stream, stressing algorithms that commit to early sets.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.coverage.bipartite import BipartiteGraph
from repro.streaming.batches import EventBatch
from repro.streaming.events import EdgeArrival, SetArrival
from repro.utils.rng import spawn_rng

__all__ = ["EdgeStream", "SetStream", "STREAM_ORDERS"]

STREAM_ORDERS = (
    "given",
    "random",
    "set_grouped",
    "element_grouped",
    "adversarial_tail",
)


class EdgeStream:
    """A replayable stream of :class:`EdgeArrival` events.

    Parameters
    ----------
    edges:
        The membership edges as (set_id, element) pairs.
    num_sets:
        Number of set vertices ``n`` (known to the algorithm up front, as the
        paper assumes — space bounds are stated in terms of ``n``).
    num_elements_hint:
        Optional upper bound on the number of distinct elements ``m``.  The
        paper's algorithms only need ``m`` up to a constant factor (it enters
        through ``log m``); generators provide the exact value.
    order:
        One of :data:`STREAM_ORDERS`.
    seed:
        Seed for the random orders; each pass re-shuffles deterministically
        from (seed, pass index).
    favored_sets:
        For ``adversarial_tail``: the set ids whose edges are moved to the
        end of the stream (defaults to the largest set).
    """

    def __init__(
        self,
        edges: Iterable[tuple[int, int]] | None = None,
        *,
        columns: tuple[np.ndarray, np.ndarray] | None = None,
        num_sets: int,
        num_elements_hint: int | None = None,
        order: str = "given",
        seed: int = 0,
        favored_sets: Sequence[int] | None = None,
    ) -> None:
        if order not in STREAM_ORDERS:
            raise ValueError(f"unknown order {order!r}; expected one of {STREAM_ORDERS}")
        if (edges is None) == (columns is None):
            raise ValueError("provide exactly one of edges= or columns=")
        if columns is not None:
            # Column-backed stream (e.g. memory-mapped off disk): no per-edge
            # Python tuples exist anywhere; the batched path slices the
            # arrays directly.
            set_column, element_column = columns
            self._edges: list[tuple[int, int]] | None = None
            self._columns: tuple[np.ndarray, np.ndarray] | None = (
                np.asarray(set_column, dtype=np.uint64),
                np.asarray(element_column, dtype=np.uint64),
            )
            if len(self._columns[0]) != len(self._columns[1]):
                raise ValueError("set and element columns must have equal length")
            self._num_events = len(self._columns[0])
        else:
            self._edges = [(int(s), int(e)) for s, e in edges]
            # Columnar mirror of the edge list (built lazily so purely scalar
            # consumers never pay for it): the batched path and the
            # sort-based orders slice and hash these whole arrays instead of
            # Python tuples.
            self._columns = None
            self._num_events = len(self._edges)
        self._num_sets = int(num_sets)
        self._order = order
        self._seed = int(seed)
        self._passes = 0
        self._favored_sets = tuple(favored_sets) if favored_sets is not None else None
        # For column-backed streams the default hint (a full-column unique
        # count) is deferred to first access, so merely opening a large
        # memory-mapped stream never scans the file.
        self._num_elements_hint: int | None
        if num_elements_hint is not None:
            self._num_elements_hint = int(num_elements_hint)
        elif self._edges is not None:
            self._num_elements_hint = len({e for _, e in self._edges})
        else:
            self._num_elements_hint = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(
        cls,
        graph: BipartiteGraph,
        *,
        order: str = "random",
        seed: int = 0,
        favored_sets: Sequence[int] | None = None,
    ) -> "EdgeStream":
        """Build a stream from a bipartite graph."""
        return cls(
            graph.edges(),
            num_sets=graph.num_sets,
            num_elements_hint=graph.num_elements,
            order=order,
            seed=seed,
            favored_sets=favored_sets,
        )

    @classmethod
    def from_columnar(
        cls,
        source,
        *,
        order: str = "given",
        seed: int = 0,
        favored_sets: Sequence[int] | None = None,
    ) -> "EdgeStream":
        """Build a stream directly over memory-mapped columnar storage.

        ``source`` is a :class:`repro.coverage.io.ColumnarEdges` (or a path
        to a directory written by :func:`repro.coverage.io.write_columnar`).
        The mapped ``uint64`` columns back the stream as-is: batches are
        sliced straight from disk pages and no per-edge Python objects are
        ever constructed on the batched path, which is what makes this the
        fast ingestion route for large workloads.
        """
        from repro.coverage.io import ColumnarEdges, open_columnar

        columns = source if isinstance(source, ColumnarEdges) else open_columnar(source)
        return cls(
            columns=(columns.set_ids, columns.elements),
            num_sets=max(1, columns.num_sets),
            num_elements_hint=columns.num_elements,
            order=order,
            seed=seed,
            favored_sets=favored_sets,
        )

    # ------------------------------------------------------------------ #
    # stream metadata
    # ------------------------------------------------------------------ #
    @property
    def num_sets(self) -> int:
        """The number of set vertices ``n`` (known up front)."""
        return self._num_sets

    @property
    def num_elements_hint(self) -> int:
        """Upper bound on the number of distinct elements ``m``."""
        if self._num_elements_hint is None:
            self._num_elements_hint = len(np.unique(self._edge_columns()[1]))
        return self._num_elements_hint

    @property
    def num_events(self) -> int:
        """Length of one pass of the stream (number of edges)."""
        return self._num_events

    @property
    def passes_taken(self) -> int:
        """How many passes have been fully or partially consumed so far."""
        return self._passes

    @property
    def order(self) -> str:
        """The configured arrival order."""
        return self._order

    # ------------------------------------------------------------------ #
    # iteration
    # ------------------------------------------------------------------ #
    def _edge_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """The (set_ids, elements) uint64 columns, built on first use."""
        if self._columns is None:
            self._columns = (
                np.fromiter(
                    (s for s, _ in self._edges), dtype=np.uint64, count=len(self._edges)
                ),
                np.fromiter(
                    (e for _, e in self._edges), dtype=np.uint64, count=len(self._edges)
                ),
            )
        return self._columns

    def _pairs(self, pass_index: int):
        """Yield the (set_id, element) int pairs of one pass, in order."""
        indices = self._ordered_indices(pass_index)
        if self._edges is not None:
            for index in indices:
                yield self._edges[index]
            return
        sets, elements = self._edge_columns()
        yield from zip(sets[indices].tolist(), elements[indices].tolist())

    def _ordered_indices(self, pass_index: int) -> np.ndarray:
        """Index permutation realising the configured order for one pass.

        The scalar iterator and the batched iterator share this permutation,
        which is what makes them event-for-event identical.  The sort-based
        orders use stable ``np.lexsort``, matching the stable ``sorted`` the
        scalar path historically used.
        """
        count = self._num_events
        if self._order == "given":
            return np.arange(count, dtype=np.int64)
        if self._order == "random":
            rng = spawn_rng(self._seed, f"edge-stream-pass-{pass_index}")
            return rng.permutation(count)
        if self._order == "set_grouped":
            sets, elements = self._edge_columns()
            return np.lexsort((elements, sets))
        if self._order == "element_grouped":
            sets, elements = self._edge_columns()
            return np.lexsort((sets, elements))
        if self._order == "adversarial_tail":
            favored = self._favored_tail()
            sets, _ = self._edge_columns()
            mask = np.isin(sets, np.array(sorted(favored), dtype=np.uint64))
            head = np.flatnonzero(~mask)
            tail = np.flatnonzero(mask)
            rng = spawn_rng(self._seed, f"edge-stream-adv-{pass_index}")
            head_order = rng.permutation(len(head))
            return np.concatenate([head[head_order], tail])
        raise AssertionError(f"unhandled order {self._order}")  # pragma: no cover

    def _favored_tail(self) -> frozenset[int]:
        if self._favored_sets is not None:
            return frozenset(self._favored_sets)
        # Default: hold back the single largest set.
        if self._edges is None:
            sets, _ = self._edge_columns()
            if len(sets) == 0:
                return frozenset()
            ids, counts = np.unique(sets, return_counts=True)
            # ids are sorted ascending and argmax returns the first maximum,
            # so ties go to the smallest id — like the scalar reduction below.
            return frozenset({int(ids[np.argmax(counts)])})
        sizes: dict[int, int] = {}
        for set_id, _ in self._edges:
            sizes[set_id] = sizes.get(set_id, 0) + 1
        if not sizes:
            return frozenset()
        largest = max(sizes, key=lambda s: (sizes[s], -s))
        return frozenset({largest})

    def __iter__(self) -> Iterator[EdgeArrival]:
        pass_index = self._passes
        self._passes += 1
        for set_id, element in self._pairs(pass_index):
            yield EdgeArrival(set_id, element)

    def iter_batches(self, batch_size: int) -> Iterator[EventBatch]:
        """Yield one pass as columnar edge batches of at most ``batch_size``.

        Counts as one pass (like ``__iter__``) and visits the edges in
        exactly the same order as the scalar iterator for the same pass
        index, so batched and scalar consumers see identical streams.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        pass_index = self._passes
        self._passes += 1
        indices = self._ordered_indices(pass_index)
        col_sets, col_elements = self._edge_columns()
        sets = col_sets[indices]
        elements = col_elements[indices]
        for start in range(0, len(indices), batch_size):
            stop = start + batch_size
            yield EventBatch(sets[start:stop], elements[start:stop])

    def pass_events(self) -> list[EdgeArrival]:
        """Materialise one pass as a list (counts as a pass)."""
        return list(iter(self))

    def reset_pass_count(self) -> None:
        """Reset the pass counter (e.g. between benchmark repetitions)."""
        self._passes = 0

    def to_graph(self) -> BipartiteGraph:
        """Materialise the full underlying graph (for offline reference runs)."""
        graph = BipartiteGraph(self._num_sets)
        if self._edges is not None:
            for set_id, element in self._edges:
                graph.add_edge(set_id, element)
        else:
            sets, elements = self._edge_columns()
            for set_id, element in zip(sets.tolist(), elements.tolist()):
                graph.add_edge(set_id, element)
        return graph


class SetStream:
    """A replayable stream of :class:`SetArrival` events (set-arrival model).

    Used by the prior-work baselines (Saha–Getoor, sieve-streaming, ...),
    which assume each set arrives intact with its member list.
    """

    def __init__(
        self,
        sets: Sequence[Sequence[int]] | dict[int, Sequence[int]],
        *,
        order: str = "given",
        seed: int = 0,
    ) -> None:
        if order not in ("given", "random"):
            raise ValueError("SetStream supports orders 'given' and 'random'")
        if isinstance(sets, dict):
            items = sorted(sets.items())
            self._sets: list[tuple[int, tuple[int, ...]]] | None = [
                (int(set_id), tuple(int(e) for e in members)) for set_id, members in items
            ]
            self._num_sets = (max(sets) + 1) if sets else 0
        else:
            self._sets = [
                (set_id, tuple(int(e) for e in members)) for set_id, members in enumerate(sets)
            ]
            self._num_sets = len(self._sets)
        self._num_events = len(self._sets)
        self._order = order
        self._seed = int(seed)
        self._passes = 0
        # Columnar mirror (CSR layout over the stored set order) backing the
        # batched iterator; built lazily so scalar consumers never pay for
        # it.  A column-backed stream (:meth:`from_columnar`) starts from
        # the CSR instead and materialises ``_sets`` lazily, so the batched
        # path slices disk pages without per-set Python objects.
        self._csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def _csr_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The (set_ids, offsets, elements) CSR columns, built on first use."""
        if self._csr is None:
            set_ids = np.fromiter(
                (set_id for set_id, _ in self._sets), dtype=np.uint64, count=len(self._sets)
            )
            lengths = np.fromiter(
                (len(members) for _, members in self._sets),
                dtype=np.int64,
                count=len(self._sets),
            )
            offsets = np.zeros(len(self._sets) + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            elements = np.fromiter(
                (e for _, members in self._sets for e in members),
                dtype=np.uint64,
                count=int(offsets[-1]),
            )
            self._csr = (set_ids, offsets, elements)
        return self._csr

    def _set_tuples(self) -> list[tuple[int, tuple[int, ...]]]:
        """The scalar ``(set_id, members)`` view, built on first use.

        Column-backed streams only pay this conversion when a *scalar*
        consumer (``__iter__``, :meth:`to_graph`, ...) actually asks for it;
        the batched path never does.
        """
        if self._sets is None:
            set_ids, offsets, elements = self._csr
            bounds = offsets.tolist()
            self._sets = [
                (int(set_id), tuple(elements[bounds[row] : bounds[row + 1]].tolist()))
                for row, set_id in enumerate(set_ids.tolist())
            ]
        return self._sets

    @classmethod
    def from_graph(
        cls, graph: BipartiteGraph, *, order: str = "random", seed: int = 0
    ) -> "SetStream":
        """Build a set-arrival stream from a bipartite graph."""
        sets = {set_id: sorted(graph.elements_of(set_id)) for set_id in graph.set_ids()}
        stream = cls(sets, order=order, seed=seed)
        stream._num_sets = graph.num_sets
        return stream

    @classmethod
    def from_columnar(
        cls, source, *, order: str = "given", seed: int = 0
    ) -> "SetStream":
        """Build a stream directly over memory-mapped CSR set storage.

        ``source`` is a :class:`repro.coverage.io.ColumnarSets` (or a path
        to a directory written by
        :func:`repro.coverage.io.write_columnar_sets`).  The mapped columns
        back the stream as-is — mirroring
        :meth:`EdgeStream.from_columnar` — so set batches are sliced
        straight from disk pages and per-set Python tuples are only built
        if a scalar consumer iterates the stream.
        """
        from repro.coverage.io import ColumnarSets, open_columnar_sets

        columns = source if isinstance(source, ColumnarSets) else open_columnar_sets(source)
        stream = cls.__new__(cls)
        if order not in ("given", "random"):
            raise ValueError("SetStream supports orders 'given' and 'random'")
        stream._sets = None
        stream._csr = (
            np.asarray(columns.set_ids, dtype=np.uint64),
            np.asarray(columns.offsets, dtype=np.int64),
            np.asarray(columns.members, dtype=np.uint64),
        )
        stream._num_sets = max(1, columns.num_sets)
        stream._num_events = columns.num_stored_sets
        stream._order = order
        stream._seed = int(seed)
        stream._passes = 0
        return stream

    @property
    def num_sets(self) -> int:
        """Number of sets in the stream."""
        return self._num_sets

    @property
    def num_events(self) -> int:
        """Number of set arrivals in one pass."""
        return self._num_events

    @property
    def passes_taken(self) -> int:
        """How many passes have been started so far."""
        return self._passes

    def _ordered_indices(self, pass_index: int) -> np.ndarray:
        if self._order == "random":
            rng = spawn_rng(self._seed, f"set-stream-pass-{pass_index}")
            return rng.permutation(self._num_events)
        return np.arange(self._num_events, dtype=np.int64)

    def __iter__(self) -> Iterator[SetArrival]:
        pass_index = self._passes
        self._passes += 1
        sets = self._set_tuples()
        for index in self._ordered_indices(pass_index):
            set_id, members = sets[index]
            yield SetArrival(set_id=set_id, elements=members)

    def iter_batches(self, batch_size: int) -> Iterator[EventBatch]:
        """Yield one pass as columnar set batches of at most ``batch_size`` sets.

        Counts as one pass and preserves the scalar iteration order, with
        each batch carrying its sets' members in CSR layout.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        pass_index = self._passes
        self._passes += 1
        order = self._ordered_indices(pass_index)
        col_set_ids, col_offsets, col_elements = self._csr_columns()
        starts = col_offsets[:-1]
        ends = col_offsets[1:]
        for begin in range(0, len(order), batch_size):
            chunk = order[begin : begin + batch_size]
            lengths = ends[chunk] - starts[chunk]
            offsets = np.zeros(len(chunk) + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            elements = (
                np.concatenate([col_elements[starts[i] : ends[i]] for i in chunk])
                if len(chunk)
                else np.empty(0, dtype=np.uint64)
            )
            yield EventBatch(col_set_ids[chunk], elements, offsets)

    def reset_pass_count(self) -> None:
        """Reset the pass counter."""
        self._passes = 0

    def to_graph(self) -> BipartiteGraph:
        """Materialise the full underlying graph."""
        graph = BipartiteGraph(max(1, self._num_sets))
        for set_id, members in self._set_tuples():
            for element in members:
                graph.add_edge(set_id, element)
        return graph

    def to_edge_stream(self, *, order: str = "random", seed: int = 0) -> EdgeStream:
        """Convert to the edge-arrival model (see also :mod:`repro.streaming.adapters`)."""
        edges = [
            (set_id, element)
            for set_id, members in self._set_tuples()
            for element in members
        ]
        return EdgeStream(
            edges,
            num_sets=max(1, self._num_sets),
            order=order,
            seed=seed,
        )
