"""Space accounting for streaming algorithms.

The whole point of the paper is the space complexity (``O~(n)`` edges instead
of ``O~(m)`` or ``O~(nm)``), so every streaming algorithm in this library
reports how many edges / words it actually stored.  :class:`SpaceMeter`
centralises that accounting and can optionally *enforce* a budget, raising
:class:`repro.errors.SpaceBudgetExceeded` when an algorithm exceeds it — this
is how the lower-bound experiments constrain their competitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpaceBudgetExceeded

__all__ = ["SpaceMeter"]


@dataclass
class SpaceMeter:
    """Tracks the current and peak number of stored items.

    Parameters
    ----------
    budget:
        Optional hard limit; ``charge`` beyond the limit raises
        :class:`SpaceBudgetExceeded` when ``enforce`` is true.
    enforce:
        Whether exceeding the budget raises (otherwise it is only recorded).
    unit:
        Human-readable unit name used in error messages and reports
        (typically ``"edges"`` or ``"words"``).
    """

    budget: int | None = None
    enforce: bool = True
    unit: str = "edges"
    current: int = 0
    peak: int = 0
    total_charged: int = 0
    violations: int = 0
    _checkpoints: dict[str, int] = field(default_factory=dict)

    def charge(self, amount: int = 1) -> None:
        """Record that ``amount`` additional items are now stored."""
        if amount < 0:
            raise ValueError("use release() to free space")
        self.current += amount
        self.total_charged += amount
        if self.current > self.peak:
            self.peak = self.current
        if self.budget is not None and self.current > self.budget:
            self.violations += 1
            if self.enforce:
                raise SpaceBudgetExceeded(self.current, self.budget, self.unit)

    def release(self, amount: int = 1) -> None:
        """Record that ``amount`` items were discarded."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self.current = max(0, self.current - amount)

    def set_current(self, value: int) -> None:
        """Set the current usage directly (peak is updated accordingly)."""
        if value < 0:
            raise ValueError("value must be non-negative")
        delta = value - self.current
        if delta > 0:
            self.charge(delta)
        else:
            self.release(-delta)

    def checkpoint(self, name: str) -> None:
        """Record the current usage under a name (e.g. per streaming pass)."""
        self._checkpoints[name] = self.current

    @property
    def checkpoints(self) -> dict[str, int]:
        """Mapping of checkpoint name → recorded usage."""
        return dict(self._checkpoints)

    @property
    def within_budget(self) -> bool:
        """Whether the peak usage stayed within the budget (if any)."""
        return self.budget is None or self.peak <= self.budget

    def as_dict(self) -> dict[str, int | str | bool | None]:
        """Summary for experiment reports."""
        return {
            "unit": self.unit,
            "budget": self.budget,
            "peak": self.peak,
            "current": self.current,
            "total_charged": self.total_charged,
            "within_budget": self.within_budget,
            "violations": self.violations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpaceMeter(peak={self.peak}, current={self.current}, "
            f"budget={self.budget}, unit={self.unit!r})"
        )
