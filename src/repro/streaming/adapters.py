"""Adapters between the set-arrival and edge-arrival models.

The paper stresses that edge arrival is strictly more general: a set-arrival
stream can always be expanded into an edge-arrival stream (all edges of a set
emitted consecutively), while the converse requires buffering whole sets.
These adapters implement both directions so the baselines (which consume set
arrivals) and the paper's algorithms (which consume edge arrivals) can be run
on identical inputs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.streaming.events import EdgeArrival, SetArrival
from repro.streaming.stream import EdgeStream, SetStream

__all__ = [
    "set_events_to_edge_events",
    "edge_events_to_set_events",
    "edge_stream_from_set_stream",
    "set_stream_from_edge_stream",
    "interleave_edges",
]


def set_events_to_edge_events(events: Iterable[SetArrival]) -> Iterator[EdgeArrival]:
    """Expand set arrivals into the equivalent consecutive edge arrivals."""
    for event in events:
        yield from event.edges()


def edge_events_to_set_events(events: Iterable[EdgeArrival]) -> list[SetArrival]:
    """Buffer a whole edge stream and group it back into set arrivals.

    This is exactly the operation a set-arrival algorithm would have to pay
    for (Ω(size of the largest set) memory) if fed an edge stream — it exists
    for testing and for constructing fair baselines, not as something a
    streaming algorithm could afford.
    """
    grouped: dict[int, list[int]] = defaultdict(list)
    order: list[int] = []
    for event in events:
        if event.set_id not in grouped:
            order.append(event.set_id)
        grouped[event.set_id].append(event.element)
    return [SetArrival.from_iterable(set_id, grouped[set_id]) for set_id in order]


def edge_stream_from_set_stream(
    stream: SetStream, *, order: str = "random", seed: int = 0
) -> EdgeStream:
    """Convert a replayable set stream into a replayable edge stream."""
    return stream.to_edge_stream(order=order, seed=seed)


def set_stream_from_edge_stream(
    stream: EdgeStream, *, order: str = "given", seed: int = 0
) -> SetStream:
    """Buffer an edge stream into a set stream (one extra pass over the data)."""
    graph = stream.to_graph()
    return SetStream.from_graph(graph, order=order, seed=seed)


def interleave_edges(
    streams: Iterable[Iterable[EdgeArrival]], pattern: str = "round_robin"
) -> Iterator[EdgeArrival]:
    """Interleave several edge event sequences into one stream.

    ``round_robin`` cycles through the sources one event at a time;
    ``concatenate`` plays each source to completion in order.  Used by tests
    to build streams where a set's edges are maximally spread out.
    """
    buffers = [list(s) for s in streams]
    if pattern == "concatenate":
        for buffer in buffers:
            yield from buffer
        return
    if pattern != "round_robin":
        raise ValueError("pattern must be 'round_robin' or 'concatenate'")
    cursors = [0] * len(buffers)
    remaining = sum(len(buffer) for buffer in buffers)
    while remaining:
        for index, buffer in enumerate(buffers):
            if cursors[index] < len(buffer):
                yield buffer[cursors[index]]
                cursors[index] += 1
                remaining -= 1
