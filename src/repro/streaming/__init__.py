"""Streaming substrate: streams, events, space metering, pass management."""

from repro.streaming.adapters import (
    edge_events_to_set_events,
    edge_stream_from_set_stream,
    interleave_edges,
    set_events_to_edge_events,
    set_stream_from_edge_stream,
)
from repro.streaming.batches import EventBatch
from repro.streaming.events import EdgeArrival, SetArrival
from repro.streaming.passes import MultiPassDriver
from repro.streaming.runner import (
    StreamingAlgorithm,
    StreamingReport,
    StreamingRunner,
    process_event_batch,
)
from repro.streaming.space import SpaceMeter
from repro.streaming.stream import STREAM_ORDERS, EdgeStream, SetStream

__all__ = [
    "EdgeArrival",
    "SetArrival",
    "EventBatch",
    "EdgeStream",
    "SetStream",
    "STREAM_ORDERS",
    "SpaceMeter",
    "MultiPassDriver",
    "StreamingAlgorithm",
    "StreamingReport",
    "StreamingRunner",
    "process_event_batch",
    "edge_events_to_set_events",
    "edge_stream_from_set_stream",
    "interleave_edges",
    "set_events_to_edge_events",
    "set_stream_from_edge_stream",
]
