"""Multi-pass execution driver.

Several algorithms in the paper take more than one pass over the stream
(Algorithm 6 takes ``r`` passes; the Demaine- and Har-Peled-style baselines
take ``4r`` and ``p`` passes).  :class:`MultiPassDriver` wraps a replayable
stream, hands out passes one at a time and refuses to exceed a configured
pass budget, so the pass counts reported in Table 1 are measured rather than
assumed.
"""

from __future__ import annotations

from typing import Callable, Iterator, TypeVar

from repro.errors import PassBudgetExceeded
from repro.streaming.batches import EventBatch
from repro.streaming.events import EdgeArrival, SetArrival
from repro.streaming.stream import EdgeStream, SetStream

__all__ = ["MultiPassDriver"]

Event = TypeVar("Event", EdgeArrival, SetArrival)


class MultiPassDriver:
    """Hands out passes over a replayable stream, enforcing a pass budget.

    Parameters
    ----------
    stream:
        A replayable :class:`EdgeStream` or :class:`SetStream`.
    max_passes:
        Optional pass budget; requesting more raises
        :class:`repro.errors.PassBudgetExceeded`.
    """

    def __init__(
        self, stream: EdgeStream | SetStream, *, max_passes: int | None = None
    ) -> None:
        self._stream = stream
        self._max_passes = max_passes
        self._passes_used = 0

    @property
    def stream(self) -> EdgeStream | SetStream:
        """The wrapped stream."""
        return self._stream

    @property
    def passes_used(self) -> int:
        """Number of passes handed out so far."""
        return self._passes_used

    @property
    def max_passes(self) -> int | None:
        """The pass budget (``None`` = unlimited)."""
        return self._max_passes

    def new_pass(self) -> Iterator:
        """Start a new pass and return an iterator over its events."""
        if self._max_passes is not None and self._passes_used >= self._max_passes:
            raise PassBudgetExceeded(self._passes_used + 1, self._max_passes)
        self._passes_used += 1
        return iter(self._stream)

    def new_batch_pass(self, batch_size: int) -> Iterator[EventBatch]:
        """Start a new pass and return an iterator over its columnar batches.

        Counts against the pass budget exactly like :meth:`new_pass`; the
        batches replay the same pass in the same event order.
        """
        if self._max_passes is not None and self._passes_used >= self._max_passes:
            raise PassBudgetExceeded(self._passes_used + 1, self._max_passes)
        self._passes_used += 1
        return self._stream.iter_batches(batch_size)

    def run_pass(self, consumer: Callable[[object], None]) -> int:
        """Run one full pass, feeding every event to ``consumer``.

        Returns the number of events delivered.
        """
        count = 0
        for event in self.new_pass():
            consumer(event)
            count += 1
        return count

    def remaining_passes(self) -> int | None:
        """Passes still available under the budget (``None`` = unlimited)."""
        if self._max_passes is None:
            return None
        return max(0, self._max_passes - self._passes_used)
