"""Glue between streams, streaming algorithms and result records.

A *streaming algorithm* in this library is any object implementing the small
protocol below (``start_pass`` / ``process`` / ``finish_pass`` / ``result`` /
``wants_another_pass`` and a ``space`` meter).  :class:`StreamingRunner`
drives such an algorithm over a replayable stream, collects the pass count
and space usage, evaluates the returned solution on the *original* instance
and packages everything into a :class:`StreamingReport` — the unit of data
the analysis layer and the benchmarks consume.

Algorithms may additionally implement the optional ``process_batch`` method,
which receives a columnar :class:`~repro.streaming.batches.EventBatch`
covering many events at once.  When the runner is asked to drive batches
(``batch_size=...``) it calls ``process_batch`` where available and otherwise
falls back to :func:`process_event_batch`'s unrolling shim, so every existing
scalar algorithm works unchanged under either drive mode — and batched versus
scalar equivalence is directly testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Protocol, runtime_checkable

from repro import obs
from repro.coverage.bipartite import BipartiteGraph
from repro.errors import PassBudgetExceeded, ReproError
from repro.streaming.batches import EventBatch
from repro.streaming.passes import MultiPassDriver
from repro.streaming.space import SpaceMeter
from repro.streaming.stream import EdgeStream, SetStream
from repro.utils.timer import Stopwatch

__all__ = [
    "StreamingAlgorithm",
    "StreamingReport",
    "StreamingRunner",
    "process_event_batch",
]

#: Stream-drive telemetry, recorded only while tracing is enabled so the
#: batch loop stays the untouched hot path otherwise.  Import-time handles:
#: a registry reset zeroes them in place.
_PASSES = obs.global_metrics().counter(
    "streaming.passes", help="stream passes driven (all runs)"
)
_EVENTS = obs.global_metrics().counter(
    "streaming.events", help="stream events fed to algorithms"
)
_BATCHES = obs.global_metrics().counter(
    "streaming.batches", help="columnar batches fed through process_batch"
)
_BATCH_SIZE = obs.global_metrics().histogram(
    "streaming.batch_size",
    buckets=obs.SIZE_BUCKETS,
    help="events per columnar batch",
)


@runtime_checkable
class StreamingAlgorithm(Protocol):
    """Protocol implemented by every streaming algorithm in the library."""

    #: Human-readable algorithm name used in reports.
    name: str
    #: Which stream model the algorithm consumes: ``"edge"`` or ``"set"``.
    arrival_model: str
    #: Space meter charged by the algorithm while it runs.
    space: SpaceMeter

    def start_pass(self, pass_index: int) -> None:
        """Called before each pass with the zero-based pass index."""

    def process(self, event: Any) -> None:
        """Called once per stream event."""

    def finish_pass(self, pass_index: int) -> None:
        """Called after each pass."""

    def wants_another_pass(self) -> bool:
        """Whether the algorithm needs a further pass over the stream."""

    def result(self) -> list[int]:
        """The chosen set ids once the algorithm has finished."""


def process_event_batch(algorithm: Any, batch: EventBatch) -> None:
    """Feed one batch to an algorithm, natively or via the unrolling shim.

    Algorithms exposing ``process_batch`` get the columnar batch directly;
    everything else receives the batch unrolled into scalar events, which by
    construction (:meth:`EventBatch.iter_events`) replays the exact scalar
    stream order.
    """
    handler = getattr(algorithm, "process_batch", None)
    if handler is not None:
        handler(batch)
        return
    process = algorithm.process
    for event in batch.iter_events():
        process(event)


@dataclass
class StreamingReport:
    """Everything measured about one streaming run."""

    algorithm: str
    arrival_model: str
    solution: tuple[int, ...]
    coverage: int
    coverage_fraction: float
    solution_size: int
    passes: int
    space_peak: int
    space_budget: int | None
    stream_events: int
    timings: dict[str, float] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float | None:
        """Stream throughput derived from ``stream_events`` and the timings.

        ``None`` when the run recorded no stream time (offline / distributed
        wrappers) or processed no events.
        """
        stream_seconds = self.timings.get("stream")
        if not stream_seconds or not self.stream_events:
            return None
        return self.stream_events / stream_seconds

    def as_dict(self) -> dict[str, Any]:
        """Flatten the report into a plain dict (for tables / JSON).

        ``extra`` keys that collide with a core or derived column raise
        :class:`ValueError` instead of silently overwriting it; rename the
        extra (e.g. ``extra.<key>``) when a clash is intended.
        """
        row: dict[str, Any] = {
            "algorithm": self.algorithm,
            "arrival_model": self.arrival_model,
            "coverage": self.coverage,
            "coverage_fraction": self.coverage_fraction,
            "solution_size": self.solution_size,
            "passes": self.passes,
            "space_peak": self.space_peak,
            "space_budget": self.space_budget,
            "stream_events": self.stream_events,
            "events_per_second": self.events_per_second,
        }
        row.update({f"time.{k}": v for k, v in self.timings.items()})
        collisions = sorted(set(self.extra) & set(row))
        if collisions:
            raise ValueError(
                f"extra key(s) {collisions} collide with core report columns; "
                "rename them (e.g. 'extra.<key>') instead of overwriting"
            )
        row.update(self.extra)
        return row


class StreamingRunner:
    """Runs a streaming algorithm over a stream and evaluates the outcome.

    Parameters
    ----------
    reference_graph:
        The full input graph used to evaluate the returned solution.  The
        algorithm itself never touches it — it only sees the stream.
    """

    def __init__(self, reference_graph: BipartiteGraph) -> None:
        self._reference = reference_graph

    def run(
        self,
        algorithm: StreamingAlgorithm,
        stream: EdgeStream | SetStream,
        *,
        max_passes: int | None = None,
        batch_size: int | None = None,
        extra: dict[str, Any] | None = None,
    ) -> StreamingReport:
        """Drive ``algorithm`` over ``stream`` until it stops asking for passes.

        ``batch_size=None`` (the default) feeds scalar events through
        ``process``; a positive ``batch_size`` feeds columnar batches through
        ``process_batch`` where the algorithm provides it and the unrolling
        shim otherwise — the two drive modes produce identical reports (up to
        timings).

        Raises :class:`repro.errors.PassBudgetExceeded` as soon as the
        algorithm asks for a pass the ``max_passes`` budget cannot grant, so
        budget exhaustion surfaces as an error instead of a silently
        truncated run, and cross-checks the driver's pass accounting against
        the runner's own count to catch duplicate or skipped passes.
        """
        self._check_model(algorithm, stream)
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1 or None, got {batch_size}")
        driver = MultiPassDriver(stream, max_passes=max_passes)
        stopwatch = Stopwatch()
        events = 0
        pass_index = 0
        while True:
            observing = obs.enabled()
            events_before = events
            with stopwatch.section("stream"), obs.span(
                "stream.pass", index=pass_index, algorithm=algorithm.name
            ):
                algorithm.start_pass(pass_index)
                if batch_size is None:
                    for event in driver.new_pass():
                        algorithm.process(event)
                        events += 1
                else:
                    for batch in driver.new_batch_pass(batch_size):
                        process_event_batch(algorithm, batch)
                        events += len(batch)
                        if observing:
                            _BATCHES.inc()
                            _BATCH_SIZE.observe(len(batch))
                algorithm.finish_pass(pass_index)
            if observing:
                _PASSES.inc()
                _EVENTS.inc(events - events_before)
            pass_index += 1
            if driver.passes_used != pass_index:
                raise ReproError(
                    f"pass accounting mismatch: runner completed {pass_index} "
                    f"pass(es) but the driver counted {driver.passes_used}"
                )
            if not algorithm.wants_another_pass():
                break
            if driver.remaining_passes() == 0:
                raise PassBudgetExceeded(pass_index + 1, driver.max_passes)
        with stopwatch.section("solve"), obs.span(
            "stream.solve", algorithm=algorithm.name
        ):
            solution = tuple(dict.fromkeys(int(s) for s in algorithm.result()))
        coverage = self._reference.coverage(solution)
        total_elements = self._reference.num_elements
        return StreamingReport(
            algorithm=algorithm.name,
            arrival_model=algorithm.arrival_model,
            solution=solution,
            coverage=coverage,
            coverage_fraction=(coverage / total_elements) if total_elements else 1.0,
            solution_size=len(solution),
            passes=driver.passes_used,
            space_peak=algorithm.space.peak,
            space_budget=algorithm.space.budget,
            stream_events=events,
            timings=stopwatch.as_dict(),
            extra=dict(extra or {}),
        )

    def evaluate(self, solution: Iterable[int]) -> tuple[int, float]:
        """Coverage value and fraction of an arbitrary solution."""
        solution = list(solution)
        coverage = self._reference.coverage(solution)
        total = self._reference.num_elements
        return coverage, (coverage / total if total else 1.0)

    @staticmethod
    def _check_model(algorithm: StreamingAlgorithm, stream: EdgeStream | SetStream) -> None:
        is_edge_stream = isinstance(stream, EdgeStream)
        if algorithm.arrival_model == "edge" and not is_edge_stream:
            raise TypeError(
                f"{algorithm.name} consumes edge arrivals but was given a set stream"
            )
        if algorithm.arrival_model == "set" and is_edge_stream:
            raise TypeError(
                f"{algorithm.name} consumes set arrivals but was given an edge stream"
            )
