"""Span tracer: thread-local nesting, cross-process stitching.

A :class:`Tracer` collects finished :class:`SpanRecord`\\ s.  Open spans
nest through a per-thread stack, so concurrent client threads each build
their own subtree without locking each other; finished records append under
one lock.  All times are seconds relative to the tracer's *epoch* (its
creation instant), which is what makes stitching possible: a worker
process's capture starts its own epoch at job entry, ships its records home
as plain picklable data, and :meth:`Tracer.adopt` re-anchors them under the
coordinator's current span — offset so the worker subtree ends at the
moment its result arrived, the only instant both clocks agree on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.obs import clock

__all__ = ["SpanRecord", "Span", "Tracer", "span_tree"]

#: ``parent_id`` of a root span (no enclosing span on its thread).
ROOT_PARENT = -1


@dataclass(frozen=True)
class SpanRecord:
    """One finished span — plain data so process workers can pickle it home.

    ``start``/``duration`` are seconds; ``start`` is relative to the owning
    tracer's epoch.  ``lane`` names the logical execution lane (``"main"``,
    ``"machine-3"``) and becomes the thread row in the Chrome trace.
    """

    span_id: int
    parent_id: int
    name: str
    start: float
    duration: float
    lane: str
    attrs: tuple[tuple[str, Any], ...]

    def attrs_dict(self) -> dict[str, Any]:
        return dict(self.attrs)


class Span:
    """An open span; context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "_attrs", "_span_id", "_parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self._attrs = attrs
        self._span_id = -1
        self._parent_id = ROOT_PARENT
        self._start = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the open span (e.g. a result count)."""
        self._attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._thread_stack()
        self._parent_id = stack[-1] if stack else ROOT_PARENT
        self._span_id = tracer._allocate_id()
        stack.append(self._span_id)
        self._start = clock.perf_counter() - tracer.epoch
        return self

    def __exit__(self, *exc_info: object) -> bool:
        tracer = self._tracer
        duration = clock.perf_counter() - tracer.epoch - self._start
        tracer._thread_stack().pop()
        tracer._append(
            SpanRecord(
                span_id=self._span_id,
                parent_id=self._parent_id,
                name=self.name,
                start=self._start,
                duration=duration,
                lane=tracer.lane,
                attrs=tuple(sorted(self._attrs.items())),
            )
        )
        return False


class Tracer:
    """Collects spans for one process (or one captured worker job)."""

    def __init__(self, lane: str = "main") -> None:
        self.lane = lane
        self.epoch = clock.perf_counter()
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._next_id = 0
        self._local = threading.local()

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def _thread_stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def current_parent(self) -> int:
        """The calling thread's innermost open span id (adoption anchor)."""
        stack = self._thread_stack()
        return stack[-1] if stack else ROOT_PARENT

    def records(self) -> list[SpanRecord]:
        """Finished spans, ordered by ``(start, span_id)``."""
        with self._lock:
            return sorted(self._records, key=lambda r: (r.start, r.span_id))

    def adopt(
        self,
        records: Iterable[SpanRecord],
        *,
        parent_id: int | None = None,
        lane: str | None = None,
    ) -> int:
        """Re-anchor a worker capture's records under this tracer.

        Foreign ids are remapped to fresh local ids; foreign roots hang off
        ``parent_id`` (default: the calling thread's current span).  Times
        shift so the foreign subtree *ends* now — arrival is the one instant
        the coordinator can place on its own clock.  Returns the number of
        adopted records.
        """
        foreign = sorted(records, key=lambda r: (r.start, r.span_id))
        if not foreign:
            return 0
        anchor = parent_id if parent_id is not None else self.current_parent()
        extent = max(record.start + record.duration for record in foreign)
        offset = (clock.perf_counter() - self.epoch) - extent
        id_map: dict[int, int] = {}
        for record in foreign:
            id_map[record.span_id] = self._allocate_id()
        for record in foreign:
            parent = (
                id_map[record.parent_id]
                if record.parent_id in id_map
                else anchor
            )
            self._append(
                SpanRecord(
                    span_id=id_map[record.span_id],
                    parent_id=parent,
                    name=record.name,
                    start=record.start + offset,
                    duration=record.duration,
                    lane=lane if lane is not None else record.lane,
                    attrs=record.attrs,
                )
            )
        return len(foreign)


def span_tree(records: Sequence[SpanRecord]) -> list[dict[str, Any]]:
    """Nest records into a deterministic tree of plain dicts.

    The shape — names, attributes and parent/child structure — is
    independent of timing and of which executor produced the spans, so the
    property tests can assert a process-pool run stitches to exactly the
    serial tree.  Siblings sort by ``(name, attrs)``; times are omitted.
    """
    children: dict[int, list[SpanRecord]] = {}
    ids = {record.span_id for record in records}
    for record in records:
        parent = record.parent_id if record.parent_id in ids else ROOT_PARENT
        children.setdefault(parent, []).append(record)

    def _build(parent: int) -> list[dict[str, Any]]:
        nodes = []
        ordered = sorted(
            children.get(parent, ()),
            key=lambda r: (r.name, tuple((k, repr(v)) for k, v in r.attrs)),
        )
        for record in ordered:
            nodes.append(
                {
                    "name": record.name,
                    "attrs": record.attrs_dict(),
                    "children": _build(record.span_id),
                }
            )
        return nodes

    return _build(ROOT_PARENT)
