"""``repro.obs`` — spans, metrics and trace export for every layer.

Zero-dependency instrumentation with one hard contract: **disabled is
free**.  The process-global switch starts off; while it is off,
:func:`span` is a module-level no-op whose cost is a single attribute load
(checked by the gated ``bench_obs_overhead`` benchmark at < 2% on the
offline hot path), and no solver output changes by a byte (property-tested
in ``tests/property/test_obs_identity.py``).

Enabled, three things light up:

* **spans** — ``with obs.span("map.shard", machine=3): ...`` context
  managers nest per thread inside the installed :class:`Tracer`; worker
  processes :func:`capture` their spans and ship them home as plain
  records, which :func:`adopt` re-anchors under the coordinator's open
  span, so one distributed run yields one coherent trace.
* **metrics** — named :class:`Counter`/:class:`Gauge`/:class:`Histogram`
  instruments in the process-global registry (:func:`global_metrics`) or
  per-component private registries.
* **exporters** — Chrome trace-event JSON (Perfetto-loadable), an indented
  text tree, and Prometheus text exposition, wired to ``--trace FILE`` /
  ``--metrics FILE`` on the CLI and :meth:`repro.api.Session.metrics`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs import clock
from repro.obs.export import (
    chrome_trace,
    render_prometheus,
    render_span_tree,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.trace import Span, SpanRecord, Tracer, span_tree

__all__ = [
    "clock",
    # switch + spans
    "span",
    "enabled",
    "enable",
    "disable",
    "tracing",
    "capture",
    "adopt",
    "current_tracer",
    "summary",
    # metrics
    "global_metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "percentile",
    # trace data + exporters
    "Span",
    "SpanRecord",
    "Tracer",
    "span_tree",
    "chrome_trace",
    "render_span_tree",
    "render_prometheus",
    "write_trace",
    "write_metrics",
]


class _State:
    """The process-global switch: ``tracer`` is ``None`` iff obs is off."""

    __slots__ = ("tracer",)

    def __init__(self) -> None:
        self.tracer: Tracer | None = None


_state = _State()
_tls = threading.local()


class _NullSpan:
    """The disabled-path span: a reusable, stateless context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()

_GLOBAL_METRICS = MetricsRegistry()


def enabled() -> bool:
    """Whether the process-global tracing switch is on."""
    return _state.tracer is not None


def enable(tracer: Tracer | None = None) -> Tracer:
    """Turn tracing on, installing ``tracer`` (or a fresh one); returns it."""
    installed = tracer if tracer is not None else Tracer()
    _state.tracer = installed
    return installed


def disable() -> None:
    """Turn tracing off; subsequent :func:`span` calls are no-ops."""
    _state.tracer = None


def current_tracer() -> Tracer | None:
    """The tracer spans record into right now.

    A thread running under :func:`capture` sees its private capture tracer;
    everything else sees the global one (or ``None`` when disabled).
    """
    override = getattr(_tls, "tracer", None)
    return override if override is not None else _state.tracer


def span(name: str, **attrs: Any) -> Any:
    """Open a span on the current tracer — or the shared no-op when off."""
    if _state.tracer is None:
        return _NULL_SPAN
    tracer = getattr(_tls, "tracer", None)
    if tracer is None:
        tracer = _state.tracer
        if tracer is None:  # disabled between the check and here
            return _NULL_SPAN
    return Span(tracer, name, attrs)


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Enable tracing for the scope, restoring the previous switch state."""
    previous = _state.tracer
    installed = enable(tracer)
    try:
        yield installed
    finally:
        _state.tracer = previous


@contextmanager
def capture(lane: str = "main") -> Iterator[Tracer]:
    """Collect this thread's spans into a private tracer (the worker side
    of cross-process stitching).

    Inside the scope, spans from the calling thread record into a fresh
    :class:`Tracer` regardless of where the global switch points — a
    process-pool worker has its own (off) switch, and a thread worker must
    not interleave into the coordinator's stack.  The yielded tracer's
    ``records()`` are plain picklable data; ship them back with the job
    result and :func:`adopt` them on the coordinator.
    """
    tracer = Tracer(lane=lane)
    previous_override = getattr(_tls, "tracer", None)
    _tls.tracer = tracer
    installed_global = _state.tracer is None
    if installed_global:
        _state.tracer = tracer
    try:
        yield tracer
    finally:
        _tls.tracer = previous_override
        if installed_global:
            _state.tracer = None


def adopt(
    records: Any, *, lane: str | None = None
) -> int:
    """Stitch captured worker records under the current span.

    No-op (returns 0) when tracing is off — the coordinator calls this
    unconditionally on whatever rode back with a job result.
    """
    tracer = current_tracer()
    if tracer is None or not records:
        return 0
    return tracer.adopt(records, lane=lane)


def global_metrics() -> MetricsRegistry:
    """The process-global metrics registry library telemetry lands in."""
    return _GLOBAL_METRICS


def summary() -> dict[str, Any]:
    """The small ``obs`` block solver reports carry when tracing is on.

    Only structure-deterministic facts (the byte-identity contract across
    executors must keep holding with tracing enabled): span count and the
    set of execution lanes — never durations.
    """
    tracer = current_tracer()
    if tracer is None:
        return {}
    records = tracer.records()
    return {
        "spans": len(records),
        "lanes": sorted({record.lane for record in records}),
    }
