"""The library's one doorway to wall-clock time.

Every timing read in ``src/repro`` goes through :func:`perf_counter` /
:func:`wall_time` instead of the :mod:`time` module directly (the
``raw-timing`` lint rule enforces it), for one reason: tests can install a
:class:`FakeClock` and make latency histograms, span durations and report
timings *deterministic*.  The indirection is a module-global callable, so
the cost over a direct ``time.perf_counter()`` call is one extra global
load — invisible next to the clock read itself.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

import time

__all__ = ["FakeClock", "fake_clock", "perf_counter", "wall_time"]


def _real_perf_counter() -> float:
    # repro-lint: disable=raw-timing -- this module IS the clock indirection; the real monotonic source lives here
    return time.perf_counter()


def _real_wall_time() -> float:
    # repro-lint: disable=raw-timing -- the one real epoch-time read behind wall_time(); everything else fakes through it
    return time.time()


_perf: Callable[[], float] = _real_perf_counter
_wall: Callable[[], float] = _real_wall_time


def perf_counter() -> float:
    """Monotonic seconds (``time.perf_counter`` unless a fake is installed)."""
    return _perf()


def wall_time() -> float:
    """Seconds since the epoch (``time.time`` unless a fake is installed)."""
    return _wall()


class FakeClock:
    """Deterministic clock: starts at ``start``, advances ``tick`` per read.

    >>> clock = FakeClock(start=10.0, tick=0.5)
    >>> clock(), clock()
    (10.0, 10.5)
    """

    __slots__ = ("now", "tick")

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self.now = float(start)
        self.tick = float(tick)

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        """Move the clock forward without consuming a read."""
        self.now += seconds


@contextmanager
def fake_clock(
    clock: FakeClock | None = None, *, start: float = 0.0, tick: float = 0.0
) -> Iterator[FakeClock]:
    """Route both time sources through one :class:`FakeClock` for the scope.

    Not thread-safe by design: it swaps the process-global sources, so use
    it only in single-threaded test sections.
    """
    global _perf, _wall
    installed = clock if clock is not None else FakeClock(start=start, tick=tick)
    saved = (_perf, _wall)
    _perf = installed
    _wall = installed
    try:
        yield installed
    finally:
        _perf, _wall = saved
