"""Named instruments: counters, gauges and fixed-bucket histograms.

The registry replaces the ad-hoc accounting that used to live in each
subsystem (the sketch store's hand-rolled hit/miss ints, the query driver's
raw latency lists): a component asks its :class:`MetricsRegistry` for an
instrument by dotted name and records into it; exporters snapshot the whole
registry at once.  Instruments are thread-safe (the serving driver observes
one histogram from eight client threads) and deterministic to snapshot —
no timestamps, no host names — so identical runs export identical metrics.

Two registries matter in practice: the process-global one
(:func:`repro.obs.global_metrics`) that library-wide telemetry lands in,
and per-component private registries where counts must stay per-instance
(each :class:`~repro.serve.store.SketchStore` owns one, so two stores never
blend their hit rates).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "percentile",
]

#: Upper bounds (seconds) for timing histograms: 1µs .. ~100s, four buckets
#: per decade.  Fixed at import so every process buckets identically.
LATENCY_BUCKETS: tuple[float, ...] = tuple(
    round(mantissa * 10.0**exponent, 12)
    for exponent in range(-6, 3)
    for mantissa in (1.0, 2.0, 5.0, 7.5)
)

#: Upper bounds for count-valued histograms (batch sizes, fold depths):
#: powers of two up to ~1M.
SIZE_BUCKETS: tuple[float, ...] = tuple(float(2**exponent) for exponent in range(21))


def percentile(sample: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a non-empty sample."""
    if not sample:
        raise ValueError("percentile of an empty sample")
    ordered = sorted(sample)
    rank = max(1, min(len(ordered), math.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        """Zero the count (keeps the instrument registered)."""
        with self._lock:
            self._value = 0

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """A point-in-time level; remembers the maximum it ever held."""

    kind = "gauge"
    __slots__ = ("name", "help", "_lock", "_value", "_max")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    @property
    def value(self) -> float:
        return self._value

    @property
    def max_seen(self) -> float:
        return self._max

    def reset(self) -> None:
        """Zero the level and the high-water mark."""
        with self._lock:
            self._value = 0.0
            self._max = 0.0

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self._value, "max": self._max}


class Histogram:
    """Fixed-bucket distribution of observed values.

    Buckets are cumulative upper bounds (Prometheus-style); an implicit
    ``+Inf`` bucket catches the tail.  With ``track_samples=True`` the raw
    observations are also retained so :meth:`quantile` is exact — the
    serving driver uses that for its p50/p99 contract, where a bucket
    upper bound would be too coarse to gate on.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "help",
        "buckets",
        "_lock",
        "_counts",
        "_sum",
        "_count",
        "_samples",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        help: str = "",
        track_samples: bool = False,
    ) -> None:
        if not buckets:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        bounds = tuple(float(bound) for bound in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name} bucket bounds must strictly increase")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._samples: list[float] | None = [] if track_samples else None

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self._samples is not None:
                self._samples.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def samples(self) -> list[float]:
        """The retained raw observations (empty unless ``track_samples``)."""
        with self._lock:
            return list(self._samples) if self._samples is not None else []

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile: exact when samples are retained,
        otherwise the upper bound of the bucket holding that rank."""
        with self._lock:
            if self._count == 0:
                raise ValueError(f"quantile of empty histogram {self.name}")
            if self._samples is not None:
                return percentile(self._samples, q)
            rank = max(1, math.ceil(q / 100.0 * self._count))
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= rank:
                    if index < len(self.buckets):
                        return self.buckets[index]
                    return math.inf
            raise AssertionError("histogram counts out of sync")  # pragma: no cover

    def reset(self) -> None:
        """Zero every bucket (keeps bounds and sample tracking mode)."""
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0
            if self._samples is not None:
                self._samples = []

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "kind": self.kind,
                "count": self._count,
                "sum": self._sum,
                "buckets": [
                    [bound, count]
                    for bound, count in zip(self.buckets, self._counts)
                ],
                "overflow": self._counts[-1],
            }


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Asking twice for the same name returns the same instrument; asking for
    an existing name as a different kind raises, so two subsystems cannot
    silently alias one metric.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Any] = {}

    def _get_or_create(self, name: str, factory: Any, kind: str) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory()
            elif instrument.kind != kind:
                raise ValueError(
                    f"instrument {name!r} already registered as "
                    f"{instrument.kind}, not {kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        help: str = "",
        track_samples: bool = False,
    ) -> Histogram:
        return self._get_or_create(
            name,
            lambda: Histogram(
                name, buckets=buckets, help=help, track_samples=track_samples
            ),
            "histogram",
        )

    def get(self, name: str) -> Any:
        """The instrument registered under ``name`` (``None`` if absent)."""
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def instruments(self) -> list[Any]:
        """Every registered instrument, sorted by name."""
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def reset(self) -> None:
        """Zero every instrument *in place*.

        Handles held by instrumented modules stay valid — resetting between
        CLI runs must not orphan the module-level instruments they cached.
        """
        for instrument in self.instruments():
            instrument.reset()

    def snapshot(
        self, extra: Iterable["MetricsRegistry"] = ()
    ) -> dict[str, dict[str, Any]]:
        """Deterministic name -> state mapping, merging ``extra`` registries.

        A name present in several registries keeps the first snapshot taken
        (self wins), matching the "private registries shadow global names"
        layering the store relies on.
        """
        merged: dict[str, dict[str, Any]] = {}
        for registry in (self, *extra):
            for instrument in registry.instruments():
                merged.setdefault(instrument.name, instrument.snapshot())
        return {name: merged[name] for name in sorted(merged)}
