"""Exporters: Chrome trace-event JSON, text span tree, Prometheus text.

All three render from plain snapshots (:class:`~repro.obs.trace.SpanRecord`
lists and :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dicts), never
from live tracers, so exporting is pure and deterministic given the data.

* :func:`chrome_trace` — the ``traceEvents`` JSON object Perfetto and
  ``chrome://tracing`` load; one complete (``"ph": "X"``) event per span,
  one thread row per execution lane, microsecond timestamps.
* :func:`render_span_tree` — an indented text tree with durations, for
  terminals and log files.
* :func:`render_prometheus` — ``# TYPE``/``# HELP`` text exposition;
  histogram buckets become cumulative ``_bucket{le=...}`` series.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.obs.trace import ROOT_PARENT, SpanRecord

__all__ = [
    "chrome_trace",
    "render_span_tree",
    "render_prometheus",
    "write_trace",
    "write_metrics",
]

#: The single process row every span lands under in the Chrome trace.
_TRACE_PID = 1


def _lane_ids(records: Sequence[SpanRecord]) -> dict[str, int]:
    """Stable lane -> tid mapping: ``main`` first, the rest sorted."""
    lanes = sorted({record.lane for record in records})
    if "main" in lanes:
        lanes.remove("main")
        lanes.insert(0, "main")
    return {lane: index for index, lane in enumerate(lanes)}


def chrome_trace(records: Sequence[SpanRecord]) -> dict[str, Any]:
    """The Chrome trace-event JSON object for one run's spans."""
    lanes = _lane_ids(records)
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _TRACE_PID,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for lane, tid in lanes.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    ordered = sorted(records, key=lambda r: (r.start, r.span_id))
    for record in ordered:
        events.append(
            {
                "name": record.name,
                "ph": "X",
                "pid": _TRACE_PID,
                "tid": lanes[record.lane],
                "ts": round(record.start * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "args": record.attrs_dict(),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_span_tree(records: Sequence[SpanRecord]) -> str:
    """Indented text rendering of the span forest, children by start time."""
    children: dict[int, list[SpanRecord]] = {}
    ids = {record.span_id for record in records}
    for record in records:
        parent = record.parent_id if record.parent_id in ids else ROOT_PARENT
        children.setdefault(parent, []).append(record)

    lines: list[str] = []

    def _render(parent: int, depth: int) -> None:
        ordered = sorted(
            children.get(parent, ()), key=lambda r: (r.start, r.span_id)
        )
        for record in ordered:
            attrs = record.attrs_dict()
            suffix = (
                "  {" + ", ".join(f"{k}={v!r}" for k, v in attrs.items()) + "}"
                if attrs
                else ""
            )
            lines.append(
                f"{'  ' * depth}{record.name}  "
                f"{record.duration * 1e3:.3f}ms  [{record.lane}]{suffix}"
            )
            _render(record.span_id, depth + 1)

    _render(ROOT_PARENT, 0)
    return "\n".join(lines) + ("\n" if lines else "")


def _prometheus_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _format_value(value: Any) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: Mapping[str, Mapping[str, Any]]) -> str:
    """Prometheus text exposition of one metrics snapshot."""
    lines: list[str] = []
    for name in sorted(snapshot):
        state = snapshot[name]
        metric = _prometheus_name(name)
        kind = state.get("kind", "gauge")
        lines.append(f"# TYPE {metric} {kind}")
        if kind == "histogram":
            cumulative = 0
            for bound, count in state.get("buckets", []):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{_format_value(float(bound))}"}} '
                    f"{cumulative}"
                )
            cumulative += state.get("overflow", 0)
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {_format_value(state.get('sum', 0.0))}")
            lines.append(f"{metric}_count {state.get('count', 0)}")
        elif kind == "gauge":
            lines.append(f"{metric} {_format_value(state.get('value', 0.0))}")
            lines.append(
                f"# TYPE {metric}_max gauge\n"
                f"{metric}_max {_format_value(state.get('max', 0.0))}"
            )
        else:
            lines.append(f"{metric} {state.get('value', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(path: str | Path, records: Sequence[SpanRecord]) -> Path:
    """Write the Chrome trace JSON for ``records`` to ``path``."""
    target = Path(path)
    target.write_text(
        json.dumps(chrome_trace(records), indent=2) + "\n", encoding="utf-8"
    )
    return target


def write_metrics(
    path: str | Path, snapshot: Mapping[str, Mapping[str, Any]]
) -> Path:
    """Write a metrics snapshot to ``path``.

    The format follows the suffix: ``.prom``/``.txt`` get the Prometheus
    text exposition, anything else the JSON snapshot.
    """
    target = Path(path)
    if target.suffix in (".prom", ".txt"):
        target.write_text(render_prometheus(snapshot), encoding="utf-8")
    else:
        target.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return target
