"""repro — reproduction of *Almost Optimal Streaming Algorithms for Coverage Problems*.

Bateni, Esfandiari, Mirrokni (SPAA 2017, arXiv:1610.08096).

The package is organised as:

* :mod:`repro.coverage` — set systems, bipartite graphs, coverage functions.
* :mod:`repro.streaming` — edge/set-arrival streams, space metering, passes.
* :mod:`repro.core` — the paper's contribution: the ``H_{<=n}`` sketch and
  the streaming algorithms for k-cover, set cover with outliers and set
  cover, plus the oracle-hardness and lower-bound constructions.
* :mod:`repro.offline` — greedy / exact / local-search reference algorithms.
* :mod:`repro.baselines` — prior streaming algorithms from Table 1.
* :mod:`repro.datasets` — synthetic workload generators (with a registry).
* :mod:`repro.analysis` — metrics, experiment runner, report rendering.
* :mod:`repro.api` — the solver registry, run specs and the ``solve()``
  facade: the canonical way to run anything in the library.

Quickstart
----------
>>> import repro
>>> from repro import datasets
>>> instance = datasets.planted_kcover_instance(100, 2000, k=5, seed=1)
>>> report = repro.solve(instance, "kcover/sketch", seed=1)
>>> report.solution_size
5

Any registered solver runs through the same call — compare with a baseline
and the offline reference by name (see :func:`repro.list_solvers`):

>>> session = repro.Session(instance, seed=1)
>>> _ = session.compare(["kcover/sketch", "kcover/sieve", "offline/greedy"])
>>> len(session.suite)
3
"""

from repro import (
    analysis,
    baselines,
    coverage,
    core,
    datasets,
    distributed,
    offline,
    parallel,
    streaming,
    utils,
)
from repro import api
from repro.core import (
    CoverageSketch,
    SketchParams,
    StreamingKCover,
    StreamingSetCover,
    StreamingSetCoverOutliers,
    StreamingSketchBuilder,
    build_h_leq_n,
)
from repro.coverage import BipartiteGraph, CoverageFunction, CoverageInstance, SetSystem
from repro.errors import (
    InfeasibleError,
    InvalidInstanceError,
    PassBudgetExceeded,
    ReproError,
    SpaceBudgetExceeded,
    SpecError,
    StreamExhausted,
    UnknownDatasetError,
    UnknownSolverError,
)
from repro.offline import greedy_k_cover, greedy_set_cover
from repro.streaming import EdgeStream, SetStream, SpaceMeter, StreamingRunner
from repro.api import (
    ProblemSpec,
    RunSpec,
    Session,
    SolverSpec,
    StreamSpec,
    list_solvers,
    register_solver,
    solve,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # subpackages
    "analysis",
    "api",
    "baselines",
    "coverage",
    "core",
    "datasets",
    "distributed",
    "offline",
    "parallel",
    "streaming",
    "utils",
    # the solve() facade and its specs
    "solve",
    "Session",
    "list_solvers",
    "register_solver",
    "ProblemSpec",
    "SolverSpec",
    "StreamSpec",
    "RunSpec",
    # most-used classes re-exported at top level
    "BipartiteGraph",
    "CoverageFunction",
    "CoverageInstance",
    "SetSystem",
    "CoverageSketch",
    "SketchParams",
    "StreamingSketchBuilder",
    "build_h_leq_n",
    "StreamingKCover",
    "StreamingSetCover",
    "StreamingSetCoverOutliers",
    "EdgeStream",
    "SetStream",
    "SpaceMeter",
    "StreamingRunner",
    "greedy_k_cover",
    "greedy_set_cover",
    # errors
    "ReproError",
    "InvalidInstanceError",
    "SpaceBudgetExceeded",
    "PassBudgetExceeded",
    "InfeasibleError",
    # repro-lint: disable=export-hygiene -- public exception hierarchy: raised by replay-safe stream wrappers for downstream callers to catch
    "StreamExhausted",
    "SpecError",
    "UnknownSolverError",
    "UnknownDatasetError",
]
