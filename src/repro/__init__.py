"""repro — reproduction of *Almost Optimal Streaming Algorithms for Coverage Problems*.

Bateni, Esfandiari, Mirrokni (SPAA 2017, arXiv:1610.08096).

The package is organised as:

* :mod:`repro.coverage` — set systems, bipartite graphs, coverage functions.
* :mod:`repro.streaming` — edge/set-arrival streams, space metering, passes.
* :mod:`repro.core` — the paper's contribution: the ``H_{<=n}`` sketch and
  the streaming algorithms for k-cover, set cover with outliers and set
  cover, plus the oracle-hardness and lower-bound constructions.
* :mod:`repro.offline` — greedy / exact / local-search reference algorithms.
* :mod:`repro.baselines` — prior streaming algorithms from Table 1.
* :mod:`repro.datasets` — synthetic workload generators.
* :mod:`repro.analysis` — metrics, experiment runner, report rendering.

Quickstart
----------
>>> from repro import datasets, StreamingKCover, StreamingRunner, EdgeStream
>>> instance = datasets.planted_kcover_instance(100, 2000, k=5, seed=1)
>>> algo = StreamingKCover(instance.n, instance.m, k=5, epsilon=0.2, seed=1)
>>> report = StreamingRunner(instance.graph).run(
...     algo, EdgeStream.from_graph(instance.graph, order="random", seed=1))
>>> report.solution_size
5
"""

from repro import (
    analysis,
    baselines,
    coverage,
    core,
    datasets,
    distributed,
    offline,
    streaming,
    utils,
)
from repro.core import (
    CoverageSketch,
    SketchParams,
    StreamingKCover,
    StreamingSetCover,
    StreamingSetCoverOutliers,
    StreamingSketchBuilder,
    build_h_leq_n,
)
from repro.coverage import BipartiteGraph, CoverageFunction, CoverageInstance, SetSystem
from repro.errors import (
    InfeasibleError,
    InvalidInstanceError,
    PassBudgetExceeded,
    ReproError,
    SpaceBudgetExceeded,
    StreamExhausted,
)
from repro.offline import greedy_k_cover, greedy_set_cover
from repro.streaming import EdgeStream, SetStream, SpaceMeter, StreamingRunner

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "analysis",
    "baselines",
    "coverage",
    "core",
    "datasets",
    "distributed",
    "offline",
    "streaming",
    "utils",
    # most-used classes re-exported at top level
    "BipartiteGraph",
    "CoverageFunction",
    "CoverageInstance",
    "SetSystem",
    "CoverageSketch",
    "SketchParams",
    "StreamingSketchBuilder",
    "build_h_leq_n",
    "StreamingKCover",
    "StreamingSetCover",
    "StreamingSetCoverOutliers",
    "EdgeStream",
    "SetStream",
    "SpaceMeter",
    "StreamingRunner",
    "greedy_k_cover",
    "greedy_set_cover",
    # errors
    "ReproError",
    "InvalidInstanceError",
    "SpaceBudgetExceeded",
    "PassBudgetExceeded",
    "InfeasibleError",
    "StreamExhausted",
]
