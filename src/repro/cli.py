"""Command-line interface.

``repro <command>`` (or ``python -m repro.cli <command>``) exposes the main
workflows without writing any Python:

* ``kcover`` — run the streaming k-cover sketch (and optionally the
  baselines) on a generated workload or an edge-list file.
* ``setcover`` — run the multi-pass streaming set cover.
* ``outliers`` — run set cover with λ outliers.
* ``generate`` — generate a synthetic workload and write it as an edge list
  (``--list`` prints the dataset registry instead).
* ``sketch`` — build the sketch of an edge-list file and report its size.
* ``distributed`` (alias ``run``) — run the two-round MapReduce-style
  k-cover; columnar ``--edges`` directories are sharded off the
  memory-mapped columns.
* ``serve`` — build the sketch once and drive a concurrent k-sweep query
  load against it (:mod:`repro.serve`), reporting p50/p99 latency, QPS and
  cache statistics.
* ``query`` — answer one coverage query from the cached sketch (repeat it
  with ``--repeat`` to see the warm-cache latency drop).
* ``list-solvers`` — print the solver registry with capability metadata.
* ``lint`` — run the repo-aware static-analysis pass (:mod:`repro.lint`)
  over files/directories; exits 0 when clean, 1 on findings, 2 on usage
  errors, so CI can gate on it.

Every command is a thin lookup into the :mod:`repro.api` solver registry and
the :mod:`repro.datasets` dataset registry — algorithms and workloads
registered by downstream code show up here automatically.  Commands print a
small aligned table and exit with a non-zero status on invalid input, so the
CLI is scriptable in pipelines.

Solver commands additionally take ``--trace FILE`` (Chrome trace-event JSON
of the run's spans, loadable in Perfetto / ``chrome://tracing``) and
``--metrics FILE`` (instrument snapshot; ``.prom``/``.txt`` renders the
Prometheus text exposition, anything else JSON).  Either flag switches the
:mod:`repro.obs` tracer on for the run; without them the instrumentation
stays on its no-op path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.api import StreamSpec, iter_solvers, solve
from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.io import open_columnar, read_edge_list, write_columnar, write_edge_list
from repro.coverage.kernels import kernel_backend_choices
from repro.datasets import get_dataset, iter_datasets, list_datasets
from repro.distributed.coordinator import REDUCE_MODES
from repro.distributed.partition import PARTITION_STRATEGIES
from repro.lint import (
    iter_rule_metas,
    lint_paths_with_stats,
    render_json,
    render_text,
    rule_choices,
)
from repro.parallel import executor_choices
from repro.utils.tables import Table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Streaming coverage algorithms (Bateni-Esfandiari-Mirrokni, SPAA 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_instance_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--edges", type=Path, default=None,
                       help="edge-list file (set<TAB>element) or columnar directory "
                            "(written by 'generate --format columnar'); overrides "
                            "--generator")
        p.add_argument("--generator", choices=list_datasets(), default="planted_kcover")
        p.add_argument("--num-sets", type=int, default=100)
        p.add_argument("--num-elements", type=int, default=5000)
        p.add_argument("--density", type=float, default=0.05)
        p.add_argument("--seed", type=int, default=0)

    def add_obs_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", type=Path, default=None,
                       help="write a Chrome trace-event JSON of the run's "
                            "spans to this file (open in Perfetto or "
                            "chrome://tracing); also enables tracing")
        p.add_argument("--metrics", type=Path, default=None,
                       help="write the metrics snapshot to this file "
                            "(.prom/.txt: Prometheus text exposition, "
                            "otherwise JSON); also enables tracing")

    def add_stream_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--batch-size", type=int, default=None,
                       help="drive the stream in columnar batches of this many "
                            "events (default: scalar events; results are identical)")
        p.add_argument("--coverage-backend", choices=kernel_backend_choices(),
                       default=None,
                       help="packed-bitset kernel for the offline coverage "
                            "evaluations (greedy reference rows); default keeps "
                            "the set-based path")

    kcover = sub.add_parser("kcover", help="single-pass streaming k-cover (Algorithm 3)")
    add_instance_options(kcover)
    add_stream_options(kcover)
    add_obs_options(kcover)
    kcover.add_argument("--k", type=int, default=10)
    kcover.add_argument("--epsilon", type=float, default=0.2)
    kcover.add_argument("--scale", type=float, default=0.1,
                        help="edge-budget scale factor (see SketchParams.scaled)")
    kcover.add_argument("--baselines", action="store_true",
                        help="also run the Saha-Getoor and sieve-streaming baselines")

    setcover = sub.add_parser("setcover", help="multi-pass streaming set cover (Algorithm 6)")
    add_instance_options(setcover)
    add_stream_options(setcover)
    add_obs_options(setcover)
    setcover.add_argument("--k", type=int, default=10)
    setcover.add_argument("--epsilon", type=float, default=0.5)
    setcover.add_argument("--rounds", type=int, default=3)
    setcover.add_argument("--scale", type=float, default=0.1)

    outliers = sub.add_parser("outliers", help="set cover with λ outliers (Algorithm 5)")
    add_instance_options(outliers)
    add_stream_options(outliers)
    add_obs_options(outliers)
    outliers.add_argument("--k", type=int, default=10)
    outliers.add_argument("--epsilon", type=float, default=0.5)
    outliers.add_argument("--outlier-fraction", type=float, default=0.1)
    outliers.add_argument("--scale", type=float, default=0.1)

    generate = sub.add_parser("generate", help="generate a workload as an edge-list file")
    add_instance_options(generate)
    generate.add_argument("--k", type=int, default=10)
    generate.add_argument("--output", type=Path, default=None)
    generate.add_argument("--format", choices=("edge-list", "columnar"),
                          default="edge-list", dest="output_format",
                          help="'edge-list' writes set<TAB>element text; 'columnar' "
                               "writes a memory-mappable uint64 column directory")
    generate.add_argument("--list", action="store_true", dest="list_datasets",
                          help="list the registered dataset generators and exit")

    sketch = sub.add_parser("sketch", help="build the H_{<=n} sketch of an instance")
    add_instance_options(sketch)
    sketch.add_argument("--k", type=int, default=10)
    sketch.add_argument("--epsilon", type=float, default=0.2)
    sketch.add_argument("--scale", type=float, default=0.1)

    distributed = sub.add_parser(
        "distributed",
        aliases=["run"],
        help="two-round MapReduce-style k-cover via composable sketches "
             "(alias: run)",
    )
    add_instance_options(distributed)
    add_obs_options(distributed)
    distributed.add_argument("--k", type=int, default=10)
    distributed.add_argument("--epsilon", type=float, default=0.2)
    distributed.add_argument("--scale", type=float, default=0.1)
    distributed.add_argument("--machines", type=int, default=4,
                             help="number of simulated map workers")
    distributed.add_argument("--strategy", choices=PARTITION_STRATEGIES,
                             default="random",
                             help="edge sharding strategy; 'row_range' maps each "
                                  "worker over a contiguous slice (for columnar "
                                  "--edges directories, its own mmap'd row range)")
    distributed.add_argument("--coverage-backend", choices=kernel_backend_choices(),
                             default=None,
                             help="packed-bitset kernel for the coordinator's "
                                  "round-2 greedy on the merged sketch")
    distributed.add_argument("--executor", choices=executor_choices(), default=None,
                             help="executor backend for the map phase: 'process' "
                                  "runs the workers on real cores ('row_range' "
                                  "over a columnar --edges directory ships only "
                                  "path + row bounds to each child); 'auto' "
                                  "picks process when more than one CPU is "
                                  "usable; default keeps the serial loop "
                                  "(results are byte-identical either way)")
    distributed.add_argument("--workers", type=int, default=None,
                             help="pool-size cap for the parallel executors "
                                  "(default: the usable CPU count); given "
                                  "without --executor it implies "
                                  "--executor auto")
    distributed.add_argument("--reduce", choices=REDUCE_MODES, default=None,
                             help="reduce mode: 'streaming' folds machine "
                                  "sketches into an incremental merge tree as "
                                  "map jobs complete (O(log machines) resident "
                                  "sketches); 'barrier' gathers all sketches "
                                  "before one flat merge; results are "
                                  "byte-identical (default: streaming)")

    serve = sub.add_parser(
        "serve", help="cached-sketch serving: one build, a concurrent query load"
    )
    add_instance_options(serve)
    add_stream_options(serve)
    add_obs_options(serve)
    serve.add_argument("--k", type=int, default=10,
                       help="queries sweep k over 1..k (distinct budgets build "
                            "their own cache entries; colliding ones share)")
    serve.add_argument("--epsilon", type=float, default=0.2)
    serve.add_argument("--scale", type=float, default=0.1)
    serve.add_argument("--queries", type=int, default=32,
                       help="number of queries in the driven load")
    serve.add_argument("--clients", type=int, default=8,
                       help="concurrent client threads")
    serve.add_argument("--executor", choices=("serial", "thread"), default="thread",
                       help="request executor; only shared-memory backends are "
                            "allowed (a process pool would duplicate the cache)")

    query = sub.add_parser(
        "query", help="answer one coverage query from the cached sketch"
    )
    add_instance_options(query)
    add_stream_options(query)
    add_obs_options(query)
    query.add_argument("--problem", choices=("k_cover", "set_cover", "set_cover_outliers"),
                       default="k_cover")
    query.add_argument("--k", type=int, default=10,
                       help="cardinality budget (k_cover queries)")
    query.add_argument("--outlier-fraction", type=float, default=0.1,
                       help="λ for set_cover_outliers queries")
    query.add_argument("--epsilon", type=float, default=0.2)
    query.add_argument("--scale", type=float, default=0.1)
    query.add_argument("--forbidden", default=None,
                       help="comma-separated set ids excluded from selection "
                            "(answered from the same cached sketch)")
    query.add_argument("--repeat", type=int, default=2,
                       help="ask the query this many times (first call builds, "
                            "repeats hit the cache)")

    sub.add_parser("list-solvers", help="list the registered solvers and their capabilities")

    lint = sub.add_parser(
        "lint", help="repo-aware static analysis of the determinism contracts"
    )
    lint.add_argument("paths", nargs="*", type=Path,
                      help="files and/or directories to lint (e.g. src benchmarks tests)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated subset of rules to run, or 'all' "
                           "(default: every registered rule; see --list-rules)")
    lint.add_argument("--changed", nargs="?", const="HEAD", default=None,
                      metavar="BASE",
                      help="fast path: lint only files 'git diff --name-only "
                           "BASE' reports dirty, plus their import-graph "
                           "dependents (default BASE: HEAD); project rules "
                           "still see facts for the whole tree")
    lint.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="fan the per-file phase over N parallel workers "
                           "(repro.parallel; report is byte-identical to "
                           "serial; default: serial)")
    lint.add_argument("--cache", nargs="?", const=".repro-lint-cache",
                      default=None, type=Path, metavar="DIR",
                      help="content-hash incremental cache: re-analyze only "
                           "changed files plus dependents (default DIR: "
                           ".repro-lint-cache; default: no cache)")
    lint.add_argument("--list-rules", action="store_true", dest="list_rules",
                      help="print the registered rules (generated from rule "
                           "metadata) and exit")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      dest="output_format",
                      help="'text' prints path:line:col findings; 'json' emits "
                           "the lossless report (re-readable via "
                           "repro.lint.report_from_json)")
    lint.add_argument("--output", type=Path, default=None,
                      help="also write the JSON report to this file (for CI "
                           "artifacts), regardless of --format")
    return parser


def _load_graph(args: argparse.Namespace) -> BipartiteGraph:
    """Build the input graph from a file or a registered generator."""
    if args.edges is not None:
        if args.edges.is_dir():
            return open_columnar(args.edges).to_graph()
        pairs = read_edge_list(args.edges)
        num_sets = max(int(s) for s, _ in pairs) + 1 if pairs else 1
        graph = BipartiteGraph(num_sets)
        for set_label, element_label in pairs:
            graph.add_edge(int(set_label), int(element_label))
        return graph
    return _generate_instance(args).graph


def _generate_instance(args: argparse.Namespace):
    return get_dataset(args.generator).build(
        args.num_sets, args.num_elements, k=args.k, density=args.density, seed=args.seed
    )


def _print(table: Table, stream) -> None:
    print(table.to_grid(), file=stream)


def _cmd_kcover(args: argparse.Namespace, out) -> int:
    graph = _load_graph(args)
    stream = StreamSpec(order="random", seed=args.seed, batch_size=args.batch_size)
    table = Table(["algorithm", "coverage", "fraction", "size", "passes", "space"])
    report = solve(
        graph, "kcover/sketch", problem_kind="k_cover", k=args.k, seed=args.seed,
        options={"epsilon": args.epsilon, "scale": args.scale}, stream=stream,
    )
    table.add_row(algorithm="sketch-kcover", coverage=report.coverage,
                  fraction=report.coverage_fraction, size=report.solution_size,
                  passes=report.passes, space=report.space_peak)
    if args.baselines:
        for name, solver, options in (
            ("saha-getoor", "kcover/saha-getoor", {}),
            ("sieve-streaming", "kcover/sieve", {"epsilon": 0.1}),
        ):
            rep = solve(graph, solver, problem_kind="k_cover", k=args.k,
                        seed=args.seed, options=options, stream=stream)
            table.add_row(algorithm=name, coverage=rep.coverage, fraction=rep.coverage_fraction,
                          size=rep.solution_size, passes=rep.passes, space=rep.space_peak)
    greedy = solve(graph, "offline/greedy", problem_kind="k_cover", k=args.k,
                   seed=args.seed, coverage_backend=args.coverage_backend)
    table.add_row(algorithm="offline-greedy", coverage=greedy.coverage,
                  fraction=greedy.coverage_fraction,
                  size=greedy.solution_size, passes="-", space=greedy.space_peak)
    _print(table, out)
    return 0


def _cmd_setcover(args: argparse.Namespace, out) -> int:
    graph = _load_graph(args)
    report = solve(
        graph, "setcover/sketch", problem_kind="set_cover", seed=args.seed,
        options={"epsilon": args.epsilon, "rounds": args.rounds,
                 "scale": args.scale, "max_guesses": 14},
        stream=StreamSpec(order="random", seed=args.seed, batch_size=args.batch_size),
    )
    greedy = solve(graph, "offline/greedy", problem_kind="set_cover", seed=args.seed,
                   options={"allow_partial": True},
                   coverage_backend=args.coverage_backend)
    table = Table(["algorithm", "cover_size", "fraction", "passes", "space"])
    table.add_row(algorithm="sketch-setcover", cover_size=report.solution_size,
                  fraction=report.coverage_fraction, passes=report.passes,
                  space=report.space_peak)
    table.add_row(algorithm="offline-greedy", cover_size=greedy.solution_size, fraction=1.0,
                  passes="-", space=greedy.space_peak)
    _print(table, out)
    return 0


def _cmd_outliers(args: argparse.Namespace, out) -> int:
    graph = _load_graph(args)
    report = solve(
        graph, "outliers/sketch", problem_kind="set_cover_outliers",
        outlier_fraction=args.outlier_fraction, seed=args.seed,
        options={"epsilon": args.epsilon, "scale": args.scale, "max_guesses": 16},
        stream=StreamSpec(order="random", seed=args.seed, batch_size=args.batch_size),
        coverage_backend=args.coverage_backend,
    )
    table = Table(["algorithm", "cover_size", "fraction", "target", "passes", "space"])
    table.add_row(algorithm="sketch-outliers", cover_size=report.solution_size,
                  fraction=report.coverage_fraction, target=1 - args.outlier_fraction,
                  passes=report.passes, space=report.space_peak)
    _print(table, out)
    return 0


def _cmd_generate(args: argparse.Namespace, out) -> int:
    if args.list_datasets:
        table = Table(["name", "summary"])
        for info in iter_datasets():
            table.add_row(**info.describe())
        _print(table, out)
        return 0
    if args.output is None:
        raise ValueError("generate requires --output (or --list to see the generators)")
    instance = _generate_instance(args)
    if args.output_format == "columnar":
        count = write_columnar(
            instance.graph.edges(),
            args.output,
            num_sets=instance.graph.num_sets,
        )
    else:
        count = write_edge_list(instance.graph.edges(), args.output)
    print(
        f"wrote {count} edges (n={instance.n}, m={instance.m}) to {args.output}",
        file=out,
    )
    return 0


def _cmd_sketch(args: argparse.Namespace, out) -> int:
    from repro.core import StreamingSketchBuilder
    from repro.core.params import SketchParams

    graph = _load_graph(args)
    params = SketchParams.scaled(
        graph.num_sets, max(1, graph.num_elements), args.k, args.epsilon, scale=args.scale
    )
    builder = StreamingSketchBuilder(params, seed=args.seed)
    builder.consume(graph.edges())
    sketch = builder.sketch()
    table = Table(["quantity", "value"])
    table.add_row(quantity="input edges", value=graph.num_edges)
    table.add_row(quantity="edge budget", value=params.edge_budget)
    table.add_row(quantity="degree cap", value=params.degree_cap)
    table.add_row(quantity="stored edges", value=sketch.num_edges)
    table.add_row(quantity="sampled elements", value=sketch.num_elements)
    table.add_row(quantity="threshold p*", value=sketch.threshold)
    table.add_row(quantity="estimated m", value=sketch.estimate_total_elements())
    _print(table, out)
    return 0


def _cmd_distributed(args: argparse.Namespace, out) -> int:
    # A columnar --edges directory is handed to solve() as the column view,
    # so the map phase shards the memory-mapped file instead of edge tuples.
    # (solve() still materialises the graph once to evaluate the solution's
    # exact coverage; only the sharding/sketching avoids it.)
    if args.edges is not None and args.edges.is_dir():
        problem = open_columnar(args.edges)
    else:
        problem = _load_graph(args)
    report = solve(
        problem, "kcover/distributed", problem_kind="k_cover", k=args.k,
        seed=args.seed, coverage_backend=args.coverage_backend,
        executor=args.executor, max_workers=args.workers, reduce=args.reduce,
        options={"epsilon": args.epsilon, "scale": args.scale,
                 "num_machines": args.machines, "strategy": args.strategy},
    )
    table = Table(["quantity", "value"])
    table.add_row(quantity="machines", value=report.extra["num_machines"])
    table.add_row(quantity="strategy", value=report.extra["strategy"])
    table.add_row(quantity="executor", value=report.extra["executor"])
    table.add_row(quantity="map_workers", value=report.extra["map_workers"])
    table.add_row(quantity="reduce_mode", value=report.extra["reduce_mode"])
    table.add_row(quantity="peak_resident_sketches",
                  value=report.extra["peak_resident_sketches"])
    table.add_row(quantity="merge_count", value=report.extra["merge_count"])
    table.add_row(quantity="rounds", value=report.passes)
    table.add_row(quantity="coverage", value=report.coverage)
    table.add_row(quantity="coverage_estimate", value=report.extra["coverage_estimate"])
    table.add_row(quantity="solution_size", value=report.solution_size)
    table.add_row(quantity="machine_load_min", value=report.extra["machine_load_min"])
    table.add_row(quantity="machine_load_mean", value=report.extra["machine_load_mean"])
    table.add_row(quantity="machine_load_max", value=report.extra["machine_load_max"])
    table.add_row(quantity="communication_edges", value=report.extra["communication_edges"])
    table.add_row(quantity="coordinator_edges", value=report.extra["coordinator_edges"])
    table.add_row(quantity="merged_threshold", value=report.extra["merged_threshold"])
    _print(table, out)
    return 0


def _cmd_lint(args: argparse.Namespace, out) -> int:
    if args.list_rules:
        if args.output_format == "json":
            import json

            print(json.dumps([meta.to_dict() for meta in iter_rule_metas()],
                             indent=2, sort_keys=True), file=out)
        else:
            table = Table(["rule", "summary"])
            for meta in iter_rule_metas():
                table.add_row(rule=meta.name, summary=meta.summary)
            _print(table, out)
        return 0
    if not args.paths:
        raise ValueError("lint requires at least one path (or --list-rules)")
    selected = None
    if args.rules is not None:
        selected = [name.strip() for name in args.rules.split(",") if name.strip()]
        unknown = sorted(set(selected) - set(rule_choices()) - {"all"})
        if unknown:
            raise ValueError(
                f"unknown rule(s) {unknown}; see 'repro lint --list-rules'"
            )
        if not selected:
            raise ValueError("--rules was given but names no rules")
    if args.jobs is not None and args.jobs < 1:
        raise ValueError(f"--jobs must be a positive integer, got {args.jobs}")
    executor = "auto" if args.jobs is not None and args.jobs > 1 else None
    report, stats = lint_paths_with_stats(
        args.paths,
        rules=selected,
        executor=executor,
        max_workers=args.jobs if executor is not None else None,
        cache_dir=args.cache,
        changed_base=args.changed,
    )
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(render_json(report, stats=stats) + "\n",
                               encoding="utf-8")
    renderer = render_json if args.output_format == "json" else render_text
    print(renderer(report), file=out)
    return report.exit_code()


def _serve_engine(args: argparse.Namespace):
    from repro.serve import QueryEngine

    engine = QueryEngine(
        _load_graph(args),
        seed=args.seed,
        batch_size=args.batch_size,
        coverage_backend=args.coverage_backend,
    )
    # Remembered on the namespace so --metrics can fold the store's private
    # registry (hits/misses/builds/evictions) into the exported snapshot.
    args.serve_store = engine.store
    return engine


def _cmd_serve(args: argparse.Namespace, out) -> int:
    from repro.api import QuerySpec
    from repro.serve import drive_queries

    engine = _serve_engine(args)
    options = {"epsilon": args.epsilon, "scale": args.scale}
    specs = [
        QuerySpec(problem="k_cover", k=1 + (i % max(1, args.k)), options=options)
        for i in range(args.queries)
    ]
    # Warm the cache first so the driven numbers measure *serving*; the
    # build cost is reported separately as warm_build_seconds.
    warm = engine.query(specs[0])
    load = drive_queries(
        engine, specs, clients=args.clients, executor=args.executor
    )
    table = Table(["quantity", "value"])
    table.add_row(quantity="warm_build_seconds", value=round(warm.timings["solve"], 6))
    for key, value in load.as_dict().items():
        value = round(value, 6) if isinstance(value, float) else value
        table.add_row(quantity=key, value=value)
    for key, value in engine.store.stats().items():
        table.add_row(quantity=f"store_{key}", value=value)
    _print(table, out)
    return 0


def _cmd_query(args: argparse.Namespace, out) -> int:
    from repro.api import QuerySpec

    engine = _serve_engine(args)
    forbidden = ()
    if args.forbidden:
        forbidden = tuple(
            int(part) for part in args.forbidden.split(",") if part.strip()
        )
    options = {"epsilon": args.epsilon, "scale": args.scale}
    if args.problem == "set_cover":
        options["max_guesses"] = 14
    elif args.problem == "set_cover_outliers":
        options["max_guesses"] = 16
    spec = QuerySpec(
        problem=args.problem,
        k=args.k if args.problem == "k_cover" else None,
        outlier_fraction=(
            args.outlier_fraction if args.problem == "set_cover_outliers" else None
        ),
        forbidden=forbidden,
        options=options,
    )
    table = Table(["call", "cache_hit", "coverage", "fraction", "size", "solve_seconds"])
    for call in range(max(1, args.repeat)):
        report = engine.query(spec)
        table.add_row(call=call, cache_hit=report.extra["cache_hit"],
                      coverage=report.coverage, fraction=report.coverage_fraction,
                      size=report.solution_size,
                      solve_seconds=round(report.timings["solve"], 6))
    _print(table, out)
    return 0


def _cmd_list_solvers(args: argparse.Namespace, out) -> int:
    table = Table(["name", "kind", "problems", "arrival", "passes", "space", "summary"])
    for info in iter_solvers():
        table.add_row(**info.capabilities())
    _print(table, out)
    return 0


_COMMANDS = {
    "kcover": _cmd_kcover,
    "setcover": _cmd_setcover,
    "outliers": _cmd_outliers,
    "generate": _cmd_generate,
    "sketch": _cmd_sketch,
    "distributed": _cmd_distributed,
    "run": _cmd_distributed,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "list-solvers": _cmd_list_solvers,
    "lint": _cmd_lint,
}


def _dispatch_with_obs(args: argparse.Namespace, out) -> int:
    """Run one command, exporting a trace and/or metrics when asked.

    Either flag turns the tracer on for the run; the global metrics registry
    is reset first so the artifacts describe exactly this invocation.
    """
    command = _COMMANDS[args.command]
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if trace_path is None and metrics_path is None:
        return command(args, out)
    obs.global_metrics().reset()
    tracer = obs.Tracer()
    with obs.tracing(tracer):
        code = command(args, out)
    if trace_path is not None:
        obs.write_trace(trace_path, tracer.records())
        print(f"trace written to {trace_path}", file=out)
    if metrics_path is not None:
        store = getattr(args, "serve_store", None)
        extra = (store.metrics,) if store is not None else ()
        obs.write_metrics(
            metrics_path, obs.global_metrics().snapshot(extra=extra)
        )
        print(f"metrics written to {metrics_path}", file=out)
    return code


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch_with_obs(args, out)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
