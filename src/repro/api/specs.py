"""Frozen, serializable run specifications for the :mod:`repro.api` facade.

A run is fully described by four small frozen dataclasses:

* :class:`ProblemSpec` — which coverage problem is posed (``k_cover``,
  ``set_cover`` or ``set_cover_outliers``) with its parameters, optionally
  bound to a named dataset from the :mod:`repro.datasets` registry so the
  spec alone can materialize the instance.
* :class:`SolverSpec` — a solver registry name plus constructor options.
* :class:`StreamSpec` — how the input is streamed (order, seed, arrival).
* :class:`RunSpec` — the bundle of the three plus run-level knobs.

Every spec validates its fields on construction (raising
:class:`repro.errors.SpecError`) and round-trips through ``to_dict`` /
``from_dict`` with only JSON-serializable values, so runs can be persisted,
diffed and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.coverage.kernels import kernel_backend_choices
from repro.distributed.coordinator import REDUCE_MODES
from repro.errors import SpecError
from repro.parallel import executor_choices
from repro.streaming.stream import STREAM_ORDERS

__all__ = [
    "PROBLEM_KINDS",
    "ProblemSpec",
    "SolverSpec",
    "StreamSpec",
    "RunSpec",
    "QuerySpec",
]

#: The three coverage problems the library solves (ProblemKind values).
PROBLEM_KINDS = ("k_cover", "set_cover", "set_cover_outliers")

_ARRIVALS = ("edge", "set")


def _check_json_value(value: Any, where: str) -> None:
    """Recursively verify ``value`` uses only JSON-serializable primitives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _check_json_value(item, f"{where}[{index}]")
        return
    if isinstance(value, Mapping):
        for key, item in value.items():
            if not isinstance(key, str):
                raise SpecError(f"{where} has a non-string key {key!r}")
            _check_json_value(item, f"{where}.{key}")
        return
    raise SpecError(
        f"{where} holds a non-serializable value of type {type(value).__name__}: {value!r}"
    )


def _check_options_dict(options: Any, where: str) -> dict[str, Any]:
    if options is None:
        return {}
    if not isinstance(options, Mapping):
        raise SpecError(f"{where} must be a mapping, got {type(options).__name__}")
    _check_json_value(dict(options), where)
    return dict(options)


def _reject_unknown_keys(cls: type, data: Mapping[str, Any]) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            f"{cls.__name__}.from_dict got unknown field(s) {unknown}; "
            f"expected a subset of {sorted(known)}"
        )


def _require_mapping(data: Any, cls: type) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise SpecError(
            f"{cls.__name__}.from_dict expects a mapping, got {type(data).__name__}"
        )
    return data


@dataclass(frozen=True)
class ProblemSpec:
    """Which coverage problem is posed, with its parameters.

    ``dataset`` / ``dataset_args`` optionally name a generator from the
    :mod:`repro.datasets` registry; :meth:`build_instance` then materializes
    the :class:`repro.coverage.instance.CoverageInstance` from the spec
    alone, making a :class:`RunSpec` self-contained.

    ``coverage_backend`` optionally names a registered coverage kernel
    backend (``"auto"``, ``"bytes"``, ``"words"``, ...); solvers that
    evaluate the coverage function offline then run on that packed-bitset
    kernel instead of Python sets — the greedy / local-search references
    pack the input graph, the streaming family packs its sketch for the
    offline phase, and the distributed coordinator packs the merged sketch
    for its round-2 greedy.  ``None`` keeps the solver's default evaluation
    path.

    ``executor`` / ``map_workers`` optionally name a :mod:`repro.parallel`
    executor backend (``"auto"``, ``"serial"``, ``"thread"``,
    ``"process"``, ...) and a pool-size cap; solvers with an embarrassingly
    parallel phase (the distributed map phase, the ensemble's per-replica
    greedy) then fan that phase over real cores — results are byte-identical
    across backends.  ``None`` keeps the serial loop, except that
    ``map_workers`` alone implies ``executor="auto"`` (asking for a worker
    count is asking for parallelism; see
    :class:`repro.parallel.ParallelMapper`).

    ``reduce`` optionally picks the distributed coordinator's reduce mode
    (:data:`repro.distributed.coordinator.REDUCE_MODES`): ``"streaming"``
    merges machine sketches pairwise as they complete (O(log machines)
    resident at the coordinator), ``"barrier"`` gathers them all first.
    Byte-identical outcomes; ``None`` keeps the solver's default
    (streaming).
    """

    problem: str = "k_cover"
    k: int | None = None
    outlier_fraction: float | None = None
    # repro-lint: disable=knob-drift -- spec-only: solve()/Session take a materialized problem; the CLI binds datasets via --generator and per-generator flags
    dataset: str | None = None
    # repro-lint: disable=knob-drift -- spec-only: generator kwargs have no flat CLI/kwarg syntax; RunSpecs carry them as a dict
    dataset_args: dict[str, Any] = field(default_factory=dict)
    coverage_backend: str | None = None
    executor: str | None = None
    map_workers: int | None = None
    reduce: str | None = None

    def __post_init__(self) -> None:
        if self.problem not in PROBLEM_KINDS:
            raise SpecError(
                f"unknown problem {self.problem!r}; expected one of {PROBLEM_KINDS}"
            )
        if self.k is not None:
            if isinstance(self.k, bool) or not isinstance(self.k, int) or self.k < 1:
                raise SpecError(f"k must be a positive integer or None, got {self.k!r}")
        if self.outlier_fraction is not None:
            if (
                isinstance(self.outlier_fraction, bool)
                or not isinstance(self.outlier_fraction, (int, float))
                or not 0.0 < float(self.outlier_fraction) < 1.0
            ):
                raise SpecError(
                    "outlier_fraction must lie strictly between 0 and 1, "
                    f"got {self.outlier_fraction!r}"
                )
        if self.problem == "set_cover_outliers" and self.outlier_fraction is None:
            raise SpecError("set_cover_outliers requires outlier_fraction")
        if self.dataset is not None and not isinstance(self.dataset, str):
            raise SpecError(f"dataset must be a string or None, got {self.dataset!r}")
        if self.coverage_backend is not None:
            choices = kernel_backend_choices()
            if self.coverage_backend not in choices:
                raise SpecError(
                    f"unknown coverage_backend {self.coverage_backend!r}; "
                    f"expected one of {choices} or None"
                )
        if self.executor is not None:
            choices = executor_choices()
            if self.executor not in choices:
                raise SpecError(
                    f"unknown executor {self.executor!r}; "
                    f"expected one of {choices} or None"
                )
        if self.map_workers is not None:
            if (
                isinstance(self.map_workers, bool)
                or not isinstance(self.map_workers, int)
                or self.map_workers < 1
            ):
                raise SpecError(
                    f"map_workers must be a positive integer or None, "
                    f"got {self.map_workers!r}"
                )
        if self.reduce is not None and self.reduce not in REDUCE_MODES:
            raise SpecError(
                f"unknown reduce mode {self.reduce!r}; "
                f"expected one of {REDUCE_MODES} or None"
            )
        object.__setattr__(
            self, "dataset_args", _check_options_dict(self.dataset_args, "dataset_args")
        )

    @classmethod
    def for_instance(cls, instance: Any) -> "ProblemSpec":
        """Derive the spec posed by a :class:`CoverageInstance`."""
        kind = getattr(instance.kind, "value", str(instance.kind))
        outlier = instance.outlier_fraction if kind == "set_cover_outliers" else None
        return cls(problem=kind, k=instance.k, outlier_fraction=outlier)

    def build_instance(self) -> Any:
        """Materialize the instance from the dataset registry."""
        if self.dataset is None:
            raise SpecError("ProblemSpec has no dataset bound; cannot build an instance")
        from repro.datasets import get_dataset

        return get_dataset(self.dataset).build(**self.dataset_args)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "problem": self.problem,
            "k": self.k,
            "outlier_fraction": self.outlier_fraction,
            "dataset": self.dataset,
            "dataset_args": dict(self.dataset_args),
            "coverage_backend": self.coverage_backend,
            "executor": self.executor,
            "map_workers": self.map_workers,
            "reduce": self.reduce,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProblemSpec":
        """Inverse of :meth:`to_dict`; unknown fields raise :class:`SpecError`."""
        data = _require_mapping(data, cls)
        _reject_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class SolverSpec:
    """A solver registry name plus constructor options."""

    name: str
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SpecError(f"solver name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "options", _check_options_dict(self.options, "options"))

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {"name": self.name, "options": dict(self.options)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolverSpec":
        """Inverse of :meth:`to_dict`; unknown fields raise :class:`SpecError`."""
        data = _require_mapping(data, cls)
        _reject_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class StreamSpec:
    """How the input graph is streamed to the solver.

    ``arrival`` normally stays ``None`` (the solver's native arrival model);
    setting it forces an ``edge`` or ``set`` stream, which surfaces the
    runner's model check for mismatched solvers.  ``order`` must be one of
    :data:`repro.streaming.stream.STREAM_ORDERS`; set-arrival streams only
    distinguish ``given`` from shuffled orders, so anything else degrades to
    ``random`` for them.  ``batch_size`` selects the drive mode: ``None``
    feeds scalar events, a positive integer feeds columnar
    :class:`~repro.streaming.batches.EventBatch` chunks of that size (the two
    modes produce identical reports; batches are faster).
    """

    # repro-lint: disable=knob-drift -- the bench harness sweeps stream orders programmatically; no CLI flag by design
    order: str = "random"
    seed: int = 0
    # repro-lint: disable=knob-drift -- arrival forcing is a test/bench knob for the runner's model check, not a CLI surface
    arrival: str | None = None
    batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.order not in STREAM_ORDERS:
            raise SpecError(
                f"unknown stream order {self.order!r}; expected one of {STREAM_ORDERS}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise SpecError(f"seed must be an integer, got {self.seed!r}")
        if self.arrival is not None and self.arrival not in _ARRIVALS:
            raise SpecError(
                f"arrival must be one of {_ARRIVALS} or None, got {self.arrival!r}"
            )
        if self.batch_size is not None:
            if (
                isinstance(self.batch_size, bool)
                or not isinstance(self.batch_size, int)
                or self.batch_size < 1
            ):
                raise SpecError(
                    f"batch_size must be a positive integer or None, got {self.batch_size!r}"
                )

    @property
    def set_order(self) -> str:
        """The order to use for a set-arrival stream."""
        return self.order if self.order in ("given", "random") else "random"

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "order": self.order,
            "seed": self.seed,
            "arrival": self.arrival,
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StreamSpec":
        """Inverse of :meth:`to_dict`; unknown fields raise :class:`SpecError`."""
        data = _require_mapping(data, cls)
        _reject_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class QuerySpec:
    """One serving-layer query against an already-built sketch.

    Where :class:`ProblemSpec` describes what to *build*, a ``QuerySpec``
    describes what to *ask*: the problem kind, the per-query parameters that
    vary between requests (``k``, ``outlier_fraction``, ``forbidden`` set
    ids, solver ``options``) and the kernel backend the answer should be
    evaluated on.  Everything that determines the sketch's *content* —
    dataset, seed, stream order, space budgets — lives on the
    :class:`repro.serve.QueryEngine` instead, so distinct queries share one
    cached sketch whenever their derived build inputs coincide.

    ``forbidden`` is normalized to a sorted tuple of distinct ids, making
    equal queries compare (and serialize) equal.
    """

    problem: str = "k_cover"
    k: int | None = None
    outlier_fraction: float | None = None
    forbidden: tuple[int, ...] = ()
    # repro-lint: disable=knob-drift -- per-query solver options are a dict with no flat CLI syntax; the query subcommand exposes the common ones (--epsilon, --scale) directly
    options: dict[str, Any] = field(default_factory=dict)
    coverage_backend: str | None = None

    def __post_init__(self) -> None:
        if self.problem not in PROBLEM_KINDS:
            raise SpecError(
                f"unknown problem {self.problem!r}; expected one of {PROBLEM_KINDS}"
            )
        if self.k is not None:
            if isinstance(self.k, bool) or not isinstance(self.k, int) or self.k < 1:
                raise SpecError(f"k must be a positive integer or None, got {self.k!r}")
        if self.problem == "k_cover" and self.k is None:
            raise SpecError("k_cover queries require k")
        if self.outlier_fraction is not None:
            if (
                isinstance(self.outlier_fraction, bool)
                or not isinstance(self.outlier_fraction, (int, float))
                or not 0.0 < float(self.outlier_fraction) < 1.0
            ):
                raise SpecError(
                    "outlier_fraction must lie strictly between 0 and 1, "
                    f"got {self.outlier_fraction!r}"
                )
        if self.problem == "set_cover_outliers" and self.outlier_fraction is None:
            raise SpecError("set_cover_outliers queries require outlier_fraction")
        forbidden = self.forbidden
        if isinstance(forbidden, (str, bytes)) or not isinstance(
            forbidden, (list, tuple)
        ):
            raise SpecError(
                f"forbidden must be a sequence of set ids, got {forbidden!r}"
            )
        ids = []
        for item in forbidden:
            if isinstance(item, bool) or not isinstance(item, int) or item < 0:
                raise SpecError(
                    f"forbidden must hold non-negative integers, got {item!r}"
                )
            ids.append(int(item))
        object.__setattr__(self, "forbidden", tuple(sorted(set(ids))))
        object.__setattr__(self, "options", _check_options_dict(self.options, "options"))
        if self.coverage_backend is not None:
            choices = kernel_backend_choices()
            if self.coverage_backend not in choices:
                raise SpecError(
                    f"unknown coverage_backend {self.coverage_backend!r}; "
                    f"expected one of {choices} or None"
                )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "problem": self.problem,
            "k": self.k,
            "outlier_fraction": self.outlier_fraction,
            "forbidden": list(self.forbidden),
            "options": dict(self.options),
            "coverage_backend": self.coverage_backend,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuerySpec":
        """Inverse of :meth:`to_dict`; unknown fields raise :class:`SpecError`."""
        data = _require_mapping(data, cls)
        _reject_unknown_keys(cls, data)
        payload = dict(data)
        if "forbidden" in payload and payload["forbidden"] is not None:
            payload["forbidden"] = tuple(payload["forbidden"])
        else:
            payload.pop("forbidden", None)
        return cls(**payload)


@dataclass(frozen=True)
class RunSpec:
    """A fully-described run: problem + solver + stream + run-level knobs."""

    problem: ProblemSpec
    solver: SolverSpec
    stream: StreamSpec = field(default_factory=StreamSpec)
    max_passes: int | None = None
    repetitions: int = 1
    label: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.problem, ProblemSpec):
            raise SpecError("problem must be a ProblemSpec")
        if not isinstance(self.solver, SolverSpec):
            raise SpecError("solver must be a SolverSpec")
        if not isinstance(self.stream, StreamSpec):
            raise SpecError("stream must be a StreamSpec")
        if self.max_passes is not None:
            if (
                isinstance(self.max_passes, bool)
                or not isinstance(self.max_passes, int)
                or self.max_passes < 1
            ):
                raise SpecError(
                    f"max_passes must be a positive integer or None, got {self.max_passes!r}"
                )
        if (
            isinstance(self.repetitions, bool)
            or not isinstance(self.repetitions, int)
            or self.repetitions < 1
        ):
            raise SpecError(
                f"repetitions must be a positive integer, got {self.repetitions!r}"
            )
        if self.label is not None and not isinstance(self.label, str):
            raise SpecError(f"label must be a string or None, got {self.label!r}")

    def to_dict(self) -> dict[str, Any]:
        """Nested plain-dict form (JSON-serializable)."""
        return {
            "problem": self.problem.to_dict(),
            "solver": self.solver.to_dict(),
            "stream": self.stream.to_dict(),
            "max_passes": self.max_passes,
            "repetitions": self.repetitions,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`; unknown fields raise :class:`SpecError`."""
        data = _require_mapping(data, cls)
        _reject_unknown_keys(cls, data)
        payload = dict(data)
        if "problem" not in payload or "solver" not in payload:
            raise SpecError("RunSpec.from_dict requires 'problem' and 'solver'")
        payload["problem"] = ProblemSpec.from_dict(payload["problem"])
        payload["solver"] = SolverSpec.from_dict(payload["solver"])
        if "stream" in payload and payload["stream"] is not None:
            payload["stream"] = StreamSpec.from_dict(payload["stream"])
        else:
            payload.pop("stream", None)
        return cls(**payload)
