"""The solver registry behind :func:`repro.solve`.

Every algorithm in the library — the paper's sketch algorithms, the prior-art
baselines, the offline references and the distributed runner — registers a
*builder* here under a ``family/name`` key together with capability metadata
(which problems it solves, its arrival model, pass count and space class).
The facade resolves names through this table, so new solvers plug into the
CLI, the benchmarks and the analysis layer by registering themselves:

>>> @register_solver(
...     "kcover/my-heuristic", kind="streaming", problems=("k_cover",),
...     arrival="set", passes="1", space="O(k)", summary="toy example")
... def _build(ctx, **options):
...     return MyHeuristic(k=ctx.k, **options)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.instance import CoverageInstance
from repro.errors import SpecError, UnknownSolverError
from repro.utils.registry import NamedRegistry

__all__ = [
    "SOLVER_KINDS",
    "ProblemContext",
    "OfflineOutcome",
    "SolverInfo",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "list_solvers",
    "iter_solvers",
]

#: How a registered solver executes: driven over a stream by the
#: StreamingRunner, run once on the materialized graph, or run as a
#: simulated multi-machine computation.
SOLVER_KINDS = ("streaming", "offline", "distributed")


@dataclass
class ProblemContext:
    """The resolved problem a builder constructs its solver for.

    ``m`` mirrors the historical call sites (``max(1, num_elements)``) so
    solvers built through the registry see exactly the arguments the
    hand-wired entry points used to pass.  ``coverage_backend`` optionally
    names a packed-bitset kernel backend; builders that evaluate the
    coverage function offline fetch a shared snapshot via :meth:`kernel`.

    ``columns`` marks a **column-backed** context: when the problem arrived
    as a memory-mapped columnar directory
    (:class:`repro.coverage.io.ColumnarEdges`), the view is kept alongside
    the materialised graph so solvers with a batched ingestion path (the
    distributed map phase) can consume the mmap'd columns directly instead
    of re-materialising per-edge tuples from ``graph``.

    ``executor`` / ``max_workers`` optionally name a :mod:`repro.parallel`
    executor backend; builders whose solver has an embarrassingly parallel
    phase (the distributed map phase, the ensemble's per-replica greedy)
    default to them, with explicit solver options still winning.

    ``reduce`` optionally picks the distributed coordinator's reduce mode
    (``"barrier"`` / ``"streaming"``); ``None`` keeps the solver default.
    """

    graph: BipartiteGraph
    problem: str = "k_cover"
    k: int = 1
    outlier_fraction: float = 0.0
    seed: int = 0
    instance: CoverageInstance | None = None
    coverage_backend: str | None = None
    columns: Any | None = None
    executor: str | None = None
    max_workers: int | None = None
    reduce: str | None = None

    @property
    def n(self) -> int:
        """Number of sets."""
        return self.graph.num_sets

    @property
    def m(self) -> int:
        """Number of elements (at least 1, as the constructors require)."""
        return max(1, self.graph.num_elements)

    def kernel(self):
        """The packed-bitset kernel for ``graph``, or None if not requested.

        Built once per context on first use (packing is the one-off cost the
        vectorised evaluations amortise) and shared by every consumer of the
        context.  Callers that already hold a kernel of the same graph (e.g.
        a :class:`~repro.api.facade.Session` sweeping many solvers) can
        preseed it via :meth:`preset_kernel` to skip re-packing.
        """
        if getattr(self, "_kernel", None) is not None:
            return self._kernel
        if self.coverage_backend is None:
            return None
        from repro.coverage.bitset import BitsetCoverage

        self._kernel = BitsetCoverage(self.graph, backend=self.coverage_backend)
        return self._kernel

    def preset_kernel(self, kernel) -> None:
        """Install an already-packed kernel of ``graph`` for :meth:`kernel`.

        The kernel must snapshot this context's graph; a mismatched kernel
        would silently evaluate coverage on the wrong bit rows, so the
        shape is checked up front.
        """
        if kernel is None:
            return
        if (
            kernel.num_sets != self.graph.num_sets
            or kernel.num_elements != self.graph.num_elements
        ):
            raise SpecError(
                f"coverage kernel snapshots a ({kernel.num_sets} sets, "
                f"{kernel.num_elements} elements) graph, but the problem graph "
                f"has ({self.graph.num_sets} sets, {self.graph.num_elements} "
                "elements); pack the kernel from the same graph"
            )
        self._kernel = kernel
        if self.coverage_backend is None:
            self.coverage_backend = kernel.backend.name


@dataclass
class OfflineOutcome:
    """What an offline builder returns: a solution plus optional metrics."""

    algorithm: str
    solution: list[int]
    extra: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SolverInfo:
    """A registry entry: the builder plus its capability metadata."""

    name: str
    kind: str
    problems: tuple[str, ...]
    arrival: str | None
    passes: str
    space: str
    summary: str
    builder: Callable[..., Any]

    @property
    def family(self) -> str:
        """The ``family`` part of a ``family/name`` registry key."""
        return self.name.split("/", 1)[0]

    def solves(self, problem: str) -> bool:
        """Whether the solver handles the given problem kind."""
        return problem in self.problems

    def capabilities(self) -> dict[str, Any]:
        """Metadata as a plain dict (for tables and ``list-solvers``)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "problems": ",".join(self.problems),
            "arrival": self.arrival or "-",
            "passes": self.passes,
            "space": self.space,
            "summary": self.summary,
        }


_REGISTRY: NamedRegistry[SolverInfo] = NamedRegistry(
    "solver", UnknownSolverError, "repro.list_solvers()"
)


def register_solver(
    name: str,
    *,
    kind: str = "streaming",
    problems: tuple[str, ...] | list[str],
    arrival: str | None = None,
    passes: str = "1",
    space: str = "",
    summary: str = "",
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering a solver builder under ``name``.

    The builder receives a :class:`ProblemContext` followed by the solver
    options as keyword arguments, and returns — depending on ``kind`` — a
    streaming algorithm, an :class:`OfflineOutcome`, or a distributed run
    report.
    """
    if kind not in SOLVER_KINDS:
        raise SpecError(f"unknown solver kind {kind!r}; expected one of {SOLVER_KINDS}")
    if kind == "streaming" and arrival not in ("edge", "set"):
        raise SpecError(f"streaming solver {name!r} must declare arrival 'edge' or 'set'")
    problems = tuple(problems)
    if not problems:
        raise SpecError(f"solver {name!r} must declare at least one problem kind")

    def decorator(builder: Callable[..., Any]) -> Callable[..., Any]:
        _REGISTRY.add(
            name,
            SolverInfo(
                name=name,
                kind=kind,
                problems=problems,
                arrival=arrival,
                passes=passes,
                space=space,
                summary=summary,
                builder=builder,
            ),
        )
        return builder

    return decorator


def unregister_solver(name: str) -> None:
    """Remove a registered solver (mainly for tests and plugins)."""
    _REGISTRY.remove(name)


def get_solver(name: str) -> SolverInfo:
    """Look up a solver, raising :class:`UnknownSolverError` with hints."""
    return _REGISTRY.get(name)


def list_solvers(*, problem: str | None = None, kind: str | None = None) -> list[str]:
    """Sorted solver names, optionally filtered by problem kind and/or kind."""
    return [
        info.name
        for info in _REGISTRY.values()
        if (problem is None or info.solves(problem))
        and (kind is None or info.kind == kind)
    ]


def iter_solvers() -> list[SolverInfo]:
    """All registry entries, sorted by name."""
    return _REGISTRY.values()
