"""Registry entries for every solver family shipped with the library.

Importing this module (which :mod:`repro.api` does) populates the solver
registry with the paper's algorithms (``kcover/sketch``, ``setcover/sketch``,
``outliers/sketch``, the ensemble and the distributed runner), the Table 1
prior-art baselines, and the offline references.

Builders forward ``seed`` from the problem context but let explicit options
win, so a spec can pin any constructor argument.  The sketch builders accept
``edge_budget`` / ``degree_cap`` options and turn them into an explicit
:class:`SketchParams`, keeping specs JSON-serializable even for ablations
that pin the budgets directly.
"""

from __future__ import annotations

from typing import Any

from repro.api.registry import OfflineOutcome, ProblemContext, register_solver
from repro.baselines import (
    DemaineSetCover,
    HarPeledSetCover,
    McGregorVuKCover,
    SahaGetoorKCover,
    SieveStreamingKCover,
    ThresholdPartialSetCover,
)
from repro.core import (
    EnsembleKCover,
    StreamingKCover,
    StreamingSetCover,
    StreamingSetCoverOutliers,
)
from repro.core.params import SketchParams
from repro.distributed import DistributedKCover
from repro.errors import SpecError
from repro.offline.greedy import greedy_k_cover, greedy_partial_cover, greedy_set_cover
from repro.offline.local_search import local_search_k_cover

__all__: list[str] = []


def _seeded(ctx: ProblemContext, options: dict[str, Any]) -> dict[str, Any]:
    """Constructor kwargs: the context seed, overridable by explicit options."""
    return {"seed": ctx.seed, **options}


def _explicit_params(ctx: ProblemContext, kwargs: dict[str, Any]) -> dict[str, Any]:
    """Turn ``edge_budget`` / ``degree_cap`` options into explicit SketchParams."""
    edge_budget = kwargs.pop("edge_budget", None)
    degree_cap = kwargs.pop("degree_cap", None)
    if edge_budget is not None:
        kwargs["params"] = SketchParams.explicit(
            ctx.n,
            ctx.m,
            ctx.k,
            kwargs.get("epsilon", 0.2),
            edge_budget=edge_budget,
            degree_cap=degree_cap,
        )
    elif degree_cap is not None:
        raise SpecError("degree_cap requires edge_budget to pin explicit SketchParams")
    return kwargs


def _require_outliers(ctx: ProblemContext, name: str) -> float:
    if not ctx.outlier_fraction:
        raise SpecError(
            f"{name} solves set cover with outliers; pass outlier_fraction "
            "(or an instance posing set_cover_outliers)"
        )
    return ctx.outlier_fraction


# --------------------------------------------------------------------- #
# k-cover: the paper's sketch, the ensemble, and the Table 1 baselines
# --------------------------------------------------------------------- #
@register_solver(
    "kcover/sketch",
    kind="streaming",
    problems=("k_cover",),
    arrival="edge",
    passes="1",
    space="O~(n)",
    summary="Algorithm 3: H_{<=n} sketch + offline greedy (1-1/e-eps)",
)
def _kcover_sketch(ctx: ProblemContext, **options: Any) -> StreamingKCover:
    kwargs = _explicit_params(ctx, _seeded(ctx, options))
    kwargs.setdefault("coverage_backend", ctx.coverage_backend)
    return StreamingKCover(ctx.n, ctx.m, k=ctx.k, **kwargs)


@register_solver(
    "kcover/ensemble",
    kind="streaming",
    problems=("k_cover",),
    arrival="edge",
    passes="1",
    space="R * O~(n)",
    summary="Best-of-R independent sketch replicas (Section 1.3.2)",
)
def _kcover_ensemble(ctx: ProblemContext, **options: Any) -> EnsembleKCover:
    kwargs = _explicit_params(ctx, _seeded(ctx, options))
    kwargs.setdefault("coverage_backend", ctx.coverage_backend)
    kwargs.setdefault("executor", ctx.executor)
    kwargs.setdefault("max_workers", ctx.max_workers)
    return EnsembleKCover(ctx.n, ctx.m, k=ctx.k, **kwargs)


@register_solver(
    "kcover/saha-getoor",
    kind="streaming",
    problems=("k_cover",),
    arrival="set",
    passes="1",
    space="O~(m)",
    summary="Saha-Getoor swap streaming (1/4 approximation)",
)
def _kcover_saha_getoor(ctx: ProblemContext, **options: Any) -> SahaGetoorKCover:
    return SahaGetoorKCover(k=ctx.k, **options)


@register_solver(
    "kcover/sieve",
    kind="streaming",
    problems=("k_cover",),
    arrival="set",
    passes="1",
    space="O~(n+m)",
    summary="Sieve-streaming (1/2 - eps approximation)",
)
def _kcover_sieve(ctx: ProblemContext, **options: Any) -> SieveStreamingKCover:
    return SieveStreamingKCover(k=ctx.k, **options)


@register_solver(
    "kcover/mcgregor-vu",
    kind="streaming",
    problems=("k_cover",),
    arrival="edge",
    passes="1",
    space="O~(n)",
    summary="McGregor-Vu element sampling (1-1/e-eps)",
)
def _kcover_mcgregor_vu(ctx: ProblemContext, **options: Any) -> McGregorVuKCover:
    return McGregorVuKCover(ctx.n, ctx.m, k=ctx.k, **_seeded(ctx, options))


# --------------------------------------------------------------------- #
# set cover
# --------------------------------------------------------------------- #
@register_solver(
    "setcover/sketch",
    kind="streaming",
    problems=("set_cover",),
    arrival="edge",
    passes="r",
    space="O~(n m^O(1/r) + m)",
    summary="Algorithm 6: r-round sketch set cover ((1+eps) log m)",
)
def _setcover_sketch(ctx: ProblemContext, **options: Any) -> StreamingSetCover:
    kwargs = _seeded(ctx, options)
    kwargs.setdefault("coverage_backend", ctx.coverage_backend)
    return StreamingSetCover(ctx.n, ctx.m, **kwargs)


@register_solver(
    "setcover/demaine",
    kind="streaming",
    problems=("set_cover",),
    arrival="set",
    passes="4r",
    space="O~(n m^{1/r} + m)",
    summary="Demaine et al. threshold set cover (4r log m)",
)
def _setcover_demaine(ctx: ProblemContext, **options: Any) -> DemaineSetCover:
    return DemaineSetCover(ctx.m, **options)


@register_solver(
    "setcover/harpeled",
    kind="streaming",
    problems=("set_cover",),
    arrival="set",
    passes="p",
    space="O~(n m^O(1/p) + m)",
    summary="Har-Peled et al. multi-pass set cover (O(p log m))",
)
def _setcover_harpeled(ctx: ProblemContext, **options: Any) -> HarPeledSetCover:
    return HarPeledSetCover(ctx.m, **options)


# --------------------------------------------------------------------- #
# set cover with outliers
# --------------------------------------------------------------------- #
@register_solver(
    "outliers/sketch",
    kind="streaming",
    problems=("set_cover_outliers",),
    arrival="edge",
    passes="1",
    space="O~_lambda(n)",
    summary="Algorithm 5: single-pass set cover with lambda outliers",
)
def _outliers_sketch(ctx: ProblemContext, **options: Any) -> StreamingSetCoverOutliers:
    outlier_fraction = _require_outliers(ctx, "outliers/sketch")
    kwargs = _seeded(ctx, options)
    kwargs.setdefault("coverage_backend", ctx.coverage_backend)
    return StreamingSetCoverOutliers(
        ctx.n, ctx.m, outlier_fraction=outlier_fraction, **kwargs
    )


@register_solver(
    "outliers/emek-rosen",
    kind="streaming",
    problems=("set_cover_outliers",),
    arrival="set",
    passes="p",
    space="O~(m)",
    summary="Threshold partial set cover baseline (Emek-Rosen style)",
)
def _outliers_emek_rosen(ctx: ProblemContext, **options: Any) -> ThresholdPartialSetCover:
    outlier_fraction = _require_outliers(ctx, "outliers/emek-rosen")
    return ThresholdPartialSetCover(ctx.m, outlier_fraction=outlier_fraction, **options)


# --------------------------------------------------------------------- #
# offline references
# --------------------------------------------------------------------- #
@register_solver(
    "offline/greedy",
    kind="offline",
    problems=("k_cover", "set_cover", "set_cover_outliers"),
    passes="offline",
    space="O(input)",
    summary="Offline lazy greedy (1-1/e for k-cover, H_m for set cover)",
)
def _offline_greedy(ctx: ProblemContext, **options: Any) -> OfflineOutcome:
    kernel = ctx.kernel()
    if ctx.problem == "k_cover":
        result = greedy_k_cover(ctx.graph, ctx.k, kernel=kernel, **options)
    elif ctx.problem == "set_cover":
        allow_partial = options.pop("allow_partial", True)
        result = greedy_set_cover(
            ctx.graph, allow_partial=allow_partial, kernel=kernel, **options
        )
    else:
        target = 1.0 - _require_outliers(ctx, "offline/greedy")
        result = greedy_partial_cover(ctx.graph, target, kernel=kernel, **options)
    extra: dict[str, Any] = {"evaluations": result.evaluations}
    if kernel is not None:
        extra["coverage_backend"] = kernel.backend.name
    return OfflineOutcome(
        algorithm="offline-greedy",
        solution=list(result.selected),
        extra=extra,
    )


@register_solver(
    "offline/local-search",
    kind="offline",
    problems=("k_cover",),
    passes="offline",
    space="O(input)",
    summary="Single-swap local search for k-cover",
)
def _offline_local_search(ctx: ProblemContext, **options: Any) -> OfflineOutcome:
    kernel = ctx.kernel()
    result = local_search_k_cover(ctx.graph, ctx.k, kernel=kernel, **_seeded(ctx, options))
    extra: dict[str, Any] = {
        "iterations": result.iterations,
        "improved_from": result.improved_from,
    }
    if kernel is not None:
        extra["coverage_backend"] = kernel.backend.name
    return OfflineOutcome(
        algorithm="offline-local-search",
        solution=list(result.selected),
        extra=extra,
    )


# --------------------------------------------------------------------- #
# distributed
# --------------------------------------------------------------------- #
@register_solver(
    "kcover/distributed",
    kind="distributed",
    problems=("k_cover",),
    arrival="edge",
    passes="2 rounds",
    space="O~(n) per machine",
    summary="Two-round MapReduce k-cover via composable sketches",
)
def _kcover_distributed(ctx: ProblemContext, **options: Any) -> tuple[str, Any]:
    kwargs = _explicit_params(ctx, _seeded(ctx, options))
    kwargs.setdefault("coverage_backend", ctx.coverage_backend)
    kwargs.setdefault("executor", ctx.executor)
    kwargs.setdefault("max_workers", ctx.max_workers)
    if ctx.reduce is not None:
        kwargs.setdefault("reduce", ctx.reduce)
    algorithm = DistributedKCover(ctx.n, ctx.m, k=ctx.k, **kwargs)
    if ctx.columns is not None:
        # Column-backed problem: the map phase shards the memory-mapped
        # columns directly (row slices / batched routing), never touching
        # the materialised evaluation graph.
        return "distributed-sketch-kcover", algorithm.run_from_columnar(ctx.columns)
    return "distributed-sketch-kcover", algorithm.run(ctx.graph.edges())
