"""Unified programmatic surface: solver registry, run specs and ``solve()``.

This package is the canonical way to run anything in the library::

    from repro import datasets, solve

    instance = datasets.planted_kcover_instance(100, 2000, k=5, seed=1)
    report = solve(instance, "kcover/sketch", options={"epsilon": 0.2})

See :mod:`repro.api.registry` for the registry, :mod:`repro.api.specs` for
the serializable spec dataclasses and :mod:`repro.api.facade` for ``solve``
and :class:`Session`.  Importing this package registers every built-in
solver (:mod:`repro.api.solvers`).
"""

from repro.api.registry import (
    SOLVER_KINDS,
    OfflineOutcome,
    ProblemContext,
    SolverInfo,
    get_solver,
    iter_solvers,
    list_solvers,
    register_solver,
    unregister_solver,
)
from repro.api.specs import (
    PROBLEM_KINDS,
    ProblemSpec,
    QuerySpec,
    RunSpec,
    SolverSpec,
    StreamSpec,
)
from repro.api import solvers as _builtin_solvers  # noqa: F401  (registers solvers)
from repro.api.facade import Session, run, solve

__all__ = [
    "SOLVER_KINDS",
    "PROBLEM_KINDS",
    "ProblemContext",
    "OfflineOutcome",
    "SolverInfo",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "list_solvers",
    "iter_solvers",
    "ProblemSpec",
    "SolverSpec",
    "StreamSpec",
    "QuerySpec",
    "RunSpec",
    "solve",
    "run",
    "Session",
]
