"""One entry point for every algorithm in the library.

:func:`solve` takes *anything that describes a coverage problem* — a
:class:`CoverageInstance`, a bare :class:`BipartiteGraph`, or a
:class:`ProblemSpec` bound to a registered dataset — resolves the solver
through the registry, wires up the right stream (edge or set arrival, per
the solver's declared model) and returns the same
:class:`~repro.streaming.runner.StreamingReport` the hand-wired entry points
produced.  Offline and distributed solvers are wrapped into the same report
shape so comparison code never branches on the solver kind.

:class:`Session` runs several solvers against one problem and aggregates the
reports into an :class:`~repro.analysis.experiments.ExperimentSuite`, which
is what the CLI, the benchmarks and the examples print.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro import obs
from repro.analysis.experiments import ExperimentSuite
from repro.analysis.metrics import approximation_ratio, kcover_reference_value
from repro.api.registry import ProblemContext, SolverInfo, get_solver
from repro.api.specs import ProblemSpec, RunSpec, SolverSpec, StreamSpec
from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.instance import CoverageInstance, ProblemKind
from repro.coverage.io import ColumnarEdges, open_columnar
from repro.errors import SpecError
from repro.streaming.runner import StreamingReport, StreamingRunner
from repro.streaming.stream import EdgeStream, SetStream
from repro.utils.tables import Table
from repro.utils.timer import Stopwatch

__all__ = ["solve", "run", "Session"]

Problem = CoverageInstance | BipartiteGraph | ProblemSpec | ColumnarEdges | str | Path


def _resolve_context(
    problem: Problem,
    *,
    k: int | None = None,
    outlier_fraction: float | None = None,
    problem_kind: str | None = None,
    seed: int = 0,
    coverage_backend: str | None = None,
    executor: str | None = None,
    max_workers: int | None = None,
    reduce: str | None = None,
) -> ProblemContext:
    """Normalize the accepted problem descriptions into a ProblemContext."""
    if isinstance(problem, (str, Path)):
        # A path is taken to mean a columnar edge directory (the on-disk
        # workload format); anything else should be loaded explicitly.
        problem = open_columnar(problem)
    if isinstance(problem, ColumnarEdges):
        columns = problem
        ctx = _resolve_context(
            columns.to_graph(),
            k=k,
            outlier_fraction=outlier_fraction,
            problem_kind=problem_kind,
            seed=seed,
            coverage_backend=coverage_backend,
            executor=executor,
            max_workers=max_workers,
            reduce=reduce,
        )
        # Keep the mmap'd view: solvers with a batched map phase (the
        # distributed family) ingest the columns without re-materialising
        # the edges the graph above was built from.
        ctx.columns = columns
        return ctx
    if isinstance(problem, ProblemSpec):
        instance = problem.build_instance()
        return _resolve_context(
            instance,
            k=k if k is not None else problem.k,
            outlier_fraction=(
                outlier_fraction
                if outlier_fraction is not None
                else problem.outlier_fraction
            ),
            problem_kind=problem_kind or problem.problem,
            seed=seed,
            coverage_backend=(
                coverage_backend
                if coverage_backend is not None
                else problem.coverage_backend
            ),
            executor=executor if executor is not None else problem.executor,
            max_workers=(
                max_workers if max_workers is not None else problem.map_workers
            ),
            reduce=reduce if reduce is not None else problem.reduce,
        )
    if isinstance(problem, CoverageInstance):
        kind = problem_kind or problem.kind.value
        return ProblemContext(
            graph=problem.graph,
            problem=kind,
            k=k if k is not None else problem.k,
            outlier_fraction=(
                outlier_fraction
                if outlier_fraction is not None
                else problem.outlier_fraction
            ),
            seed=seed,
            instance=problem,
            coverage_backend=coverage_backend,
            executor=executor,
            max_workers=max_workers,
            reduce=reduce,
        )
    if isinstance(problem, BipartiteGraph):
        if problem_kind is None:
            if outlier_fraction:
                problem_kind = "set_cover_outliers"
            elif k is not None:
                problem_kind = "k_cover"
            else:
                problem_kind = "set_cover"
        if problem_kind == "k_cover" and k is None:
            raise SpecError(
                "k_cover on a bare graph requires k=...; only a CoverageInstance "
                "carries a default cardinality budget"
            )
        return ProblemContext(
            graph=problem,
            problem=problem_kind,
            k=k if k is not None else 1,
            outlier_fraction=outlier_fraction or 0.0,
            seed=seed,
            coverage_backend=coverage_backend,
            executor=executor,
            max_workers=max_workers,
            reduce=reduce,
        )
    raise SpecError(
        "problem must be a CoverageInstance, a BipartiteGraph, a ProblemSpec, "
        "a ColumnarEdges view or a columnar directory path, "
        f"got {type(problem).__name__}"
    )


def _resolve_solver(solver: str | SolverSpec, options: Mapping[str, Any] | None) -> SolverSpec:
    if isinstance(solver, SolverSpec):
        if options:
            merged = {**solver.options, **dict(options)}
            return SolverSpec(solver.name, merged)
        return solver
    if isinstance(solver, str):
        return SolverSpec(solver, dict(options or {}))
    raise SpecError(f"solver must be a registry name or SolverSpec, got {solver!r}")


def _build_stream(
    info: SolverInfo,
    algorithm: Any,
    ctx: ProblemContext,
    stream: StreamSpec | EdgeStream | SetStream | None,
) -> tuple[EdgeStream | SetStream, str | None]:
    """The stream to drive, plus the effective order (None for prebuilt streams)."""
    if isinstance(stream, (EdgeStream, SetStream)):
        return stream, None
    if stream is not None and not isinstance(stream, StreamSpec):
        raise SpecError(
            "stream must be a StreamSpec, an EdgeStream/SetStream or None, "
            f"got {type(stream).__name__}"
        )
    spec = stream if isinstance(stream, StreamSpec) else StreamSpec(seed=ctx.seed)
    arrival = spec.arrival or getattr(algorithm, "arrival_model", info.arrival) or "edge"
    if arrival == "edge":
        return EdgeStream.from_graph(ctx.graph, order=spec.order, seed=spec.seed), spec.order
    # SetStream only supports given/random; the degraded effective order is
    # recorded on the report so mixed comparisons stay honest.
    return (
        SetStream.from_graph(ctx.graph, order=spec.set_order, seed=spec.seed),
        spec.set_order,
    )


def _offline_report(
    ctx: ProblemContext, outcome: Any, solve_seconds: float, extra: dict[str, Any]
) -> StreamingReport:
    solution = tuple(dict.fromkeys(int(s) for s in outcome.solution))
    coverage = ctx.graph.coverage(solution)
    total = ctx.graph.num_elements
    return StreamingReport(
        algorithm=outcome.algorithm,
        arrival_model="offline",
        solution=solution,
        coverage=coverage,
        coverage_fraction=(coverage / total) if total else 1.0,
        solution_size=len(solution),
        passes=0,
        space_peak=ctx.graph.num_edges,
        space_budget=None,
        stream_events=0,
        timings={"solve": solve_seconds},
        extra={**outcome.extra, **extra},
    )


def _distributed_report(
    ctx: ProblemContext,
    algorithm_name: str,
    dist_report: Any,
    solve_seconds: float,
    extra: dict[str, Any],
) -> StreamingReport:
    solution = tuple(dict.fromkeys(int(s) for s in dist_report.solution))
    coverage = ctx.graph.coverage(solution)
    total = ctx.graph.num_elements
    return StreamingReport(
        algorithm=algorithm_name,
        arrival_model="distributed",
        solution=solution,
        coverage=coverage,
        coverage_fraction=(coverage / total) if total else 1.0,
        solution_size=len(solution),
        passes=dist_report.rounds,
        space_peak=dist_report.max_machine_load,
        space_budget=None,
        stream_events=dist_report.communication_edges,
        timings={"solve": solve_seconds},
        extra={
            "num_machines": dist_report.num_machines,
            "strategy": dist_report.strategy,
            "communication_edges": dist_report.communication_edges,
            "coordinator_edges": dist_report.coordinator_edges,
            "coverage_estimate": dist_report.coverage_estimate,
            "machine_load_min": dist_report.min_machine_load,
            "machine_load_mean": dist_report.mean_machine_load,
            "machine_load_max": dist_report.max_machine_load,
            "merged_threshold": dist_report.merged_threshold,
            "executor": dist_report.executor,
            "map_workers": dist_report.map_workers,
            "reduce_mode": dist_report.reduce_mode,
            "peak_resident_sketches": dist_report.peak_resident_sketches,
            "merge_count": dist_report.merge_count,
            **extra,
        },
    )


def solve(
    problem: Problem,
    solver: str | SolverSpec = "kcover/sketch",
    *,
    k: int | None = None,
    outlier_fraction: float | None = None,
    problem_kind: str | None = None,
    options: Mapping[str, Any] | None = None,
    stream: StreamSpec | EdgeStream | SetStream | None = None,
    max_passes: int | None = None,
    batch_size: int | None = None,
    seed: int = 0,
    coverage_backend: str | None = None,
    # repro-lint: disable=knob-drift -- imperative-only: injects a live kernel object (tests/benchmarks); specs name backends by string instead
    coverage_kernel: Any | None = None,
    executor: str | None = None,
    max_workers: int | None = None,
    reduce: str | None = None,
    # repro-lint: disable=knob-drift -- imperative-only escape hatch for solver-specific kwargs; RunSpecs express these via SolverSpec.options
    extra: Mapping[str, Any] | None = None,
) -> StreamingReport:
    """Run any registered solver on a coverage problem and report the outcome.

    Parameters
    ----------
    problem:
        A :class:`CoverageInstance`, a bare :class:`BipartiteGraph`, a
        :class:`ProblemSpec` bound to a registered dataset, or a columnar
        workload — a :class:`repro.coverage.io.ColumnarEdges` view or the
        path of a directory written by
        :func:`repro.coverage.io.write_columnar`.  Columnar problems stay
        column-backed: solvers with a batched map phase (the distributed
        family) ingest the memory-mapped columns directly.
    solver:
        A registry name (``"kcover/sketch"``) or a :class:`SolverSpec`.
    k / outlier_fraction / problem_kind:
        Problem parameters; default to the instance's own when available.
    options:
        Extra constructor options merged over the solver spec's options.
    stream:
        A :class:`StreamSpec` (order/seed/arrival), an already-built stream,
        or ``None`` for the solver's native arrival model seeded by ``seed``.
        Only streaming solvers consume a stream: a StreamSpec is ignored by
        offline/distributed solvers (so mixed comparisons can share one
        spec), but passing them a concrete stream object is an error.
    max_passes:
        Pass budget enforced by the runner; rejected for offline and
        distributed solvers, which take no passes over a stream.
    batch_size:
        Columnar drive mode: ``None`` feeds scalar events, a positive
        integer feeds :class:`~repro.streaming.batches.EventBatch` chunks of
        that size (identical reports, higher throughput).  Overrides the
        stream spec's ``batch_size``; rejected for offline and distributed
        solvers.
    seed:
        Seed forwarded to the solver constructor (and the default stream).
    coverage_backend:
        Optional coverage kernel backend name (``"auto"``, ``"bytes"``,
        ``"words"``); solvers that evaluate coverage offline (the greedy and
        local-search references) then run on the packed-bitset kernel.
        Defaults to the problem spec's ``coverage_backend`` when solving a
        :class:`ProblemSpec`; ``None`` keeps the default evaluation path.
    coverage_kernel:
        An already-packed :class:`repro.coverage.bitset.BitsetCoverage` of
        the problem graph; skips re-packing when the caller runs many
        solvers against one graph (:class:`Session` does this).  Implies
        its own backend when ``coverage_backend`` is not given.
    executor / max_workers:
        Optional :mod:`repro.parallel` executor backend name (``"auto"``,
        ``"serial"``, ``"thread"``, ``"process"``) and pool-size cap.
        Solvers with an embarrassingly parallel phase — the distributed map
        phase, the ensemble's per-replica greedy — fan that phase over real
        cores; results are byte-identical across backends.  Defaults to the
        problem spec's ``executor`` / ``map_workers`` when solving a
        :class:`ProblemSpec`; ``None`` keeps the serial loop.
    reduce:
        Optional distributed reduce mode (``"barrier"`` gathers every
        machine sketch before one flat merge; ``"streaming"`` folds sketches
        into an incremental merge tree as map jobs complete, keeping only
        O(log machines) resident).  Byte-identical results either way; only
        the distributed solver family consumes it.  Defaults to the problem
        spec's ``reduce`` when solving a :class:`ProblemSpec`; ``None``
        keeps the solver default (streaming).
    extra:
        Free-form values recorded on the report.

    Returns
    -------
    StreamingReport
        The same report type the hand-wired pipelines produced; offline and
        distributed solvers are wrapped into it (``arrival_model`` is then
        ``"offline"`` / ``"distributed"`` and ``passes`` counts rounds).
    """
    spec = _resolve_solver(solver, options)
    info = get_solver(spec.name)
    ctx = _resolve_context(
        problem,
        k=k,
        outlier_fraction=outlier_fraction,
        problem_kind=problem_kind,
        seed=seed,
        coverage_backend=coverage_backend,
        executor=executor,
        max_workers=max_workers,
        reduce=reduce,
    )
    if coverage_kernel is not None:
        ctx.preset_kernel(coverage_kernel)
    if not info.solves(ctx.problem):
        raise SpecError(
            f"solver {info.name!r} solves {info.problems}, not {ctx.problem!r}; "
            "pass problem_kind=... or pick a matching solver"
        )
    extra_dict = dict(extra or {})
    with obs.span("solve", solver=info.name, problem=ctx.problem):
        report = _run_solver(
            info, spec, ctx, stream, max_passes, batch_size, extra_dict
        )
    if obs.enabled():
        # Only while tracing: disabled runs stay byte-identical to the
        # pre-instrumentation library (comparison code strips "obs" the way
        # it strips SERVE_EXTRA_KEYS).
        report.extra.setdefault("obs", obs.summary())
    return report


def _run_solver(
    info: SolverInfo,
    spec: SolverSpec,
    ctx: ProblemContext,
    stream: StreamSpec | EdgeStream | SetStream | None,
    max_passes: int | None,
    batch_size: int | None,
    extra_dict: dict[str, Any],
) -> StreamingReport:
    """Dispatch one resolved solver run (the body of :func:`solve`)."""
    if info.kind == "streaming":
        algorithm = info.builder(ctx, **spec.options)
        stream_obj, effective_order = _build_stream(info, algorithm, ctx, stream)
        if effective_order is not None:
            extra_dict.setdefault("stream_order", effective_order)
        effective_batch = batch_size
        if effective_batch is None and isinstance(stream, StreamSpec):
            effective_batch = stream.batch_size
        if effective_batch is not None:
            extra_dict.setdefault("batch_size", effective_batch)
        return StreamingRunner(ctx.graph).run(
            algorithm,
            stream_obj,
            max_passes=max_passes,
            batch_size=effective_batch,
            extra=extra_dict,
        )
    if max_passes is not None:
        raise SpecError(
            f"max_passes does not apply to {info.kind} solver {info.name!r}"
        )
    if batch_size is not None:
        raise SpecError(
            f"batch_size does not apply to {info.kind} solver {info.name!r}"
        )
    if isinstance(stream, (EdgeStream, SetStream)):
        raise SpecError(
            f"{info.kind} solver {info.name!r} does not consume a stream object; "
            "pass a StreamSpec (ignored) or omit stream"
        )
    stopwatch = Stopwatch()
    with stopwatch.section("solve"):
        outcome = info.builder(ctx, **spec.options)
    seconds = stopwatch.as_dict().get("solve", 0.0)
    if info.kind == "offline":
        return _offline_report(ctx, outcome, seconds, extra_dict)
    algorithm_name, dist_report = outcome
    return _distributed_report(ctx, algorithm_name, dist_report, seconds, extra_dict)


def run(spec: RunSpec, problem: Problem | None = None) -> list[StreamingReport]:
    """Execute a fully-serialized :class:`RunSpec`.

    ``problem`` overrides the spec's dataset-bound instance (useful when the
    caller already materialized it); otherwise the spec must name a dataset,
    which is materialized once and shared by all repetitions.  Returns one
    report per repetition (stream and solver seeds advance by one per
    repetition so repeats are independent but reproducible); ``spec.label``
    is recorded on each report's ``extra``.
    """
    target = problem if problem is not None else spec.problem.build_instance()
    extra = {"label": spec.label} if spec.label else None
    # Offline repetitions all evaluate on the same graph: pack the coverage
    # kernel once for the whole sweep instead of once per repetition.
    kernel = None
    if (
        spec.problem.coverage_backend is not None
        and get_solver(spec.solver.name).kind == "offline"
        and isinstance(target, (CoverageInstance, BipartiteGraph))
    ):
        from repro.coverage.bitset import BitsetCoverage

        graph = target.graph if isinstance(target, CoverageInstance) else target
        kernel = BitsetCoverage(graph, backend=spec.problem.coverage_backend)
    reports = []
    for repetition in range(spec.repetitions):
        stream = StreamSpec(
            order=spec.stream.order,
            seed=spec.stream.seed + repetition,
            arrival=spec.stream.arrival,
            batch_size=spec.stream.batch_size,
        )
        reports.append(
            solve(
                target,
                spec.solver,
                k=spec.problem.k,
                outlier_fraction=spec.problem.outlier_fraction,
                problem_kind=spec.problem.problem,
                stream=stream,
                max_passes=spec.max_passes,
                seed=stream.seed,
                coverage_backend=spec.problem.coverage_backend,
                coverage_kernel=kernel,
                executor=spec.problem.executor,
                max_workers=spec.problem.map_workers,
                reduce=spec.problem.reduce,
                extra=extra,
            )
        )
    return reports


class Session:
    """Batch/comparison runs against one problem, aggregated via analysis.

    Every :meth:`run` resolves a solver through the registry, executes it via
    :func:`solve` and appends a row (with reference value and approximation
    ratio when the problem is a :class:`CoverageInstance`) to ``self.suite``.
    """

    def __init__(
        self,
        problem: Problem,
        *,
        name: str = "session",
        instance_name: str = "instance",
        k: int | None = None,
        outlier_fraction: float | None = None,
        problem_kind: str | None = None,
        seed: int = 0,
        reference_value: float | None = None,
        suite: ExperimentSuite | None = None,
        coverage_backend: str | None = None,
        executor: str | None = None,
        max_workers: int | None = None,
        reduce: str | None = None,
    ) -> None:
        if isinstance(problem, ProblemSpec):
            if coverage_backend is None:
                coverage_backend = problem.coverage_backend
            if executor is None:
                executor = problem.executor
            if max_workers is None:
                max_workers = problem.map_workers
            if reduce is None:
                reduce = problem.reduce
            problem = problem.build_instance()
        if isinstance(problem, (str, Path)):
            problem = open_columnar(problem)
        self.problem: CoverageInstance | BipartiteGraph | ColumnarEdges = problem
        self.suite = suite if suite is not None else ExperimentSuite(name)
        self.instance_name = instance_name
        self.seed = seed
        self._k = k
        self._outlier_fraction = outlier_fraction
        self._problem_kind = problem_kind
        self.coverage_backend = coverage_backend
        self.executor = executor
        self.max_workers = max_workers
        self.reduce = reduce
        self._kernel_cache: Any | None = None
        self._serve_engine: Any | None = None
        self._reference = reference_value
        # A default reference only makes sense for k-cover (Opt_k); computing
        # it is a full offline greedy, so defer until a row actually needs it.
        self._auto_reference = (
            reference_value is None
            and isinstance(problem, CoverageInstance)
            and ProblemKind(problem_kind or problem.kind) is ProblemKind.K_COVER
        )

    def _kernel(self) -> Any | None:
        """The session-wide packed kernel (one packing per Session), or None.

        Shared by the greedy reference and every offline solver run, so a
        sweep over many solvers/seeds pays the O(n·m) packing cost once.
        """
        if self.coverage_backend is None:
            return None
        if self._kernel_cache is None:
            from repro.coverage.bitset import BitsetCoverage

            graph = (
                self.problem.graph
                if isinstance(self.problem, CoverageInstance)
                else self.problem
            )
            if isinstance(graph, ColumnarEdges):
                graph = graph.to_graph()
            self._kernel_cache = BitsetCoverage(graph, backend=self.coverage_backend)
        return self._kernel_cache

    @property
    def reference_value(self) -> float | None:
        """The reference Opt_k rows are normalized against (None if not k-cover)."""
        if self._reference is None and self._auto_reference:
            # Packing is only worth paying when the reference actually runs a
            # greedy; a planted value short-circuits before touching it.
            kernel = (
                self._kernel()
                if getattr(self.problem, "planted_value", None) is None
                else None
            )
            self._reference = kcover_reference_value(self.problem, kernel=kernel)
            self._auto_reference = False
        return self._reference

    def run(
        self,
        solver: str | SolverSpec,
        *,
        label: str | None = None,
        options: Mapping[str, Any] | None = None,
        stream: StreamSpec | EdgeStream | SetStream | None = None,
        max_passes: int | None = None,
        seed: int | None = None,
        extra: Mapping[str, Any] | None = None,
    ) -> StreamingReport:
        """Run one solver and append its row to the suite."""
        run_seed = self.seed if seed is None else seed
        if stream is None:
            stream = StreamSpec(seed=run_seed)
        # Only offline solvers evaluate through the kernel; pack it once per
        # session and only when a run actually consumes it.
        solver_spec = _resolve_solver(solver, None)
        needs_kernel = get_solver(solver_spec.name).kind == "offline"
        report = solve(
            self.problem,
            solver,
            k=self._k,
            outlier_fraction=self._outlier_fraction,
            problem_kind=self._problem_kind,
            options=options,
            stream=stream,
            max_passes=max_passes,
            seed=run_seed,
            coverage_backend=self.coverage_backend,
            coverage_kernel=self._kernel() if needs_kernel else None,
            executor=self.executor,
            max_workers=self.max_workers,
            reduce=self.reduce,
            extra=dict(extra or {}),
        )
        self._record_row(report, label)
        return report

    def serve(
        self,
        *,
        store: Any | None = None,
        batch_size: int | None = 1024,
    ) -> Any:
        """The session's serving engine (built lazily, one per session).

        The engine is configured to match :meth:`run`'s defaults — stream
        order ``"random"`` seeded by the session seed, the session's
        coverage backend — so ``session.query(QuerySpec(...))`` answers
        with the same solution ``session.run(solver, options=...)`` would
        compute, while repeat queries skip ingestion entirely.  ``store``
        and ``batch_size`` only take effect on the first call (they shape
        the engine being created); later calls return the cached engine.
        """
        if self._serve_engine is None:
            from repro.serve import QueryEngine

            self._serve_engine = QueryEngine(
                self.problem,
                store=store,
                seed=self.seed,
                order="random",
                stream_seed=self.seed,
                batch_size=batch_size,
                coverage_backend=self.coverage_backend,
            )
        return self._serve_engine

    def query(self, spec: Any, *, label: str | None = None) -> StreamingReport:
        """Serve one query from the cached sketch and append its suite row.

        ``spec`` is a :class:`~repro.api.specs.QuerySpec` (or its dict
        form).  The row carries the same reference/approximation metrics
        :meth:`run` records, so served and freshly-solved rows aggregate
        side by side.
        """
        report = self.serve().query(spec)
        self._record_row(report, label)
        return report

    def metrics(self) -> dict[str, dict[str, Any]]:
        """Deterministic snapshot of every instrument this session can see.

        Merges the process-global registry (streaming, distributed, kernel
        and driver telemetry) with the serving store's private registry when
        the session has built its engine; the ``serve.store.*`` names only
        exist in store registries, so the merge never aliases two sources.
        """
        store_registries = []
        if self._serve_engine is not None:
            store_registries.append(self._serve_engine.store.metrics)
        return obs.global_metrics().snapshot(extra=store_registries)

    def _record_row(self, report: StreamingReport, label: str | None) -> None:
        """Append one report to the suite with the session-level metrics."""
        metrics: dict[str, Any] = {}
        graph = (
            self.problem.graph
            if isinstance(self.problem, CoverageInstance)
            else self.problem
        )
        reference = self.reference_value
        if reference is not None:
            metrics["reference_value"] = reference
            metrics["approx_ratio"] = approximation_ratio(report.coverage, reference)
        metrics["n"] = graph.num_sets
        metrics["m"] = graph.num_elements
        metrics["input_edges"] = graph.num_edges
        self.suite.add_report(
            label or report.algorithm, self.instance_name, report, extra=metrics
        )

    def compare(
        self,
        solvers: Iterable[str | SolverSpec | Sequence[Any]],
        **common: Any,
    ) -> list[StreamingReport]:
        """Run several solvers; entries are names, specs or (label, name[, options])."""
        reports = []
        for entry in solvers:
            if isinstance(entry, (str, SolverSpec)):
                reports.append(self.run(entry, **common))
                continue
            entry = list(entry)
            if len(entry) == 2:
                label, name = entry
                reports.append(self.run(name, label=label, **common))
            elif len(entry) == 3:
                label, name, options = entry
                reports.append(self.run(name, label=label, options=options, **common))
            else:
                raise SpecError(
                    "compare entries must be a solver name/spec, (label, name) "
                    f"or (label, name, options); got {entry!r}"
                )
        return reports

    def to_table(self, columns: Sequence[str] | None = None) -> Table:
        """Render the accumulated rows as a table."""
        return self.suite.to_table(columns)

    def aggregate(self, metric: str, by: str = "algorithm") -> dict[str, dict[str, float]]:
        """Summary statistics of one metric grouped by a field."""
        return self.suite.aggregate(metric, by=by)

    def __len__(self) -> int:
        return len(self.suite)
