"""Deterministic fan-out/gather of independent jobs over an executor backend.

:class:`ParallelMapper` is the one object the rest of the library talks to
when it wants work spread over cores: the distributed map phase hands it one
job per machine, the sketch ensemble hands it one greedy run per replica,
and the benchmark sweeps hand it one configuration per row.  Whatever the
backend, :meth:`ParallelMapper.map` returns results **in input order** —
job ``i``'s result sits at index ``i`` — so callers that merge results
(e.g. :func:`repro.distributed.coordinator.merge_machine_sketches`) see
exactly the sequence a serial loop would have produced and stay
byte-identical across backends.

Robustness: pool creation can fail in restricted sandboxes (no ``/dev/shm``,
seccomp-filtered ``fork``); the mapper degrades to the serial loop in that
case rather than crashing, because every backend computes the same results.
Job *exceptions* are never swallowed — they propagate to the caller exactly
as the serial loop would raise them.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from typing import Any, Callable, Iterable, TypeVar

from repro.parallel.executors import ExecutorBackend, resolve_executor, usable_cpus
from repro.utils.validation import check_positive_int

__all__ = ["ParallelMapper", "as_mapper"]

Job = TypeVar("Job")
Result = TypeVar("Result")


class ParallelMapper:
    """Maps a function over independent jobs through an executor backend.

    Parameters
    ----------
    executor:
        A backend name (``"serial"``, ``"thread"``, ``"process"``),
        ``"auto"`` (process when more than one CPU is usable), ``None``
        (serial) or an :class:`~repro.parallel.executors.ExecutorBackend`
        instance.  ``None`` *with* an explicit ``max_workers`` resolves to
        ``"auto"`` — asking for a worker count is asking for parallelism,
        and the serial backend has no pool to cap, so every layer
        (``DistributedKCover``, ``ProblemSpec.map_workers``, ``solve()``,
        the CLI) honours a bare worker count the same way instead of
        silently running serial.
    max_workers:
        Pool size cap for the parallel backends; defaults to
        :func:`~repro.parallel.executors.usable_cpus`.  The effective pool
        never exceeds the number of jobs.
    """

    def __init__(
        self,
        executor: str | ExecutorBackend | None = "auto",
        *,
        max_workers: int | None = None,
    ) -> None:
        if max_workers is not None:
            check_positive_int(max_workers, "max_workers")
            if executor is None:
                executor = "auto"
        self.backend = resolve_executor(executor)
        self.max_workers = max_workers
        #: What the most recent :meth:`map` call actually executed with —
        #: ``(backend name, pool size)``.  Differs from the configured
        #: backend only when the sandbox fallback had to run the jobs
        #: serially, so reports can record the truth instead of the plan.
        self.last_execution: tuple[str, int] = (self.backend.name, 1)

    @property
    def is_serial(self) -> bool:
        """Whether jobs run inline (no fan-out set-up cost, no pickling)."""
        return not self.backend.parallel

    def workers_for(self, num_jobs: int) -> int:
        """The pool size :meth:`map` would use for ``num_jobs`` jobs.

        ``min(max_workers, num_jobs)`` — an explicit ``max_workers`` is an
        operator override and is deliberately *not* clamped to
        :func:`usable_cpus` (oversubscription is legitimate for IO-heavy
        jobs); only the default derives from the CPU quota.
        """
        if self.is_serial or num_jobs <= 1:
            return 1
        limit = self.max_workers if self.max_workers is not None else usable_cpus()
        return max(1, min(limit, num_jobs))

    def map(self, fn: Callable[[Job], Result], jobs: Iterable[Job]) -> list[Result]:
        """Apply ``fn`` to every job; results come back in input order.

        The serial backend (and any degenerate pool of one worker) runs the
        plain loop.  Parallel backends submit every job up front and gather
        by future — submission order, not completion order — so the returned
        list is independent of scheduling.

        A backend whose pool cannot be used in the current environment falls
        back to the serial loop.  Workers are spawned lazily, so the guard
        covers construction *and* submission (a seccomp-blocked ``fork``
        surfaces as ``OSError``/``RuntimeError`` from ``submit``, not from
        the constructor) plus :class:`BrokenExecutor` from the gather (a
        worker killed by the environment).  Exceptions raised by a *job*
        come out of ``future.result()`` with their own types and propagate
        untouched — never swallowed, never retried.  Jobs are pure
        descriptions of work, so the serial retry after a pool-level
        failure recomputes, never double-applies.  ``last_execution``
        records what actually ran — ``("serial", 1)`` after a fallback —
        so callers report the truth, not the plan.
        """
        jobs = list(jobs)
        workers = self.workers_for(len(jobs))
        if workers == 1 or self.backend.make_pool is None:
            self.last_execution = (self.backend.name, 1)
            return [fn(job) for job in jobs]
        self.last_execution = (self.backend.name, workers)
        try:
            pool = self.backend.make_pool(workers)
        except OSError:  # pragma: no cover - sandbox fallback
            return self._fallback(fn, jobs)
        # On a pool-level failure, fall through WITHOUT rescuing yet: the
        # finally clause first drains/cancels everything already submitted,
        # so the serial rescue below never runs concurrently with a
        # half-finished pool job.
        try:
            try:
                futures = [pool.submit(fn, job) for job in jobs]
            # repro-lint: disable=no-silent-except -- deliberate fallthrough: the finally drains the pool, then _fallback records ("serial", 1) and reruns
            except (OSError, RuntimeError, BrokenExecutor):
                pass  # pragma: no cover - worker spawn blocked at submit
            else:
                try:
                    return [future.result() for future in futures]
                # repro-lint: disable=no-silent-except -- deliberate fallthrough to the recorded serial rescue below
                except BrokenExecutor:  # pragma: no cover - pool died mid-run
                    pass
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return self._fallback(fn, jobs)  # pragma: no cover - sandbox fallback

    def _fallback(self, fn: Callable[[Job], Result], jobs: list[Job]) -> list[Result]:
        """The serial rescue loop for pool-level failures (recorded as such)."""
        self.last_execution = ("serial", 1)
        return [fn(job) for job in jobs]

    def describe(self) -> dict[str, Any]:
        """Diagnostics for reports and tables."""
        return {
            "executor": self.backend.name,
            "max_workers": self.max_workers,
            "usable_cpus": usable_cpus(),
        }


def as_mapper(
    executor: "str | ExecutorBackend | ParallelMapper | None",
    max_workers: int | None = None,
) -> ParallelMapper:
    """Normalise the executor arguments callers accept into a mapper.

    An existing :class:`ParallelMapper` passes through (``max_workers`` must
    then be unset — the mapper already carries one); anything else is handed
    to the constructor.
    """
    if isinstance(executor, ParallelMapper):
        if max_workers is not None and max_workers != executor.max_workers:
            raise ValueError(
                "pass max_workers to the ParallelMapper constructor, not "
                "alongside an already-built mapper"
            )
        return executor
    return ParallelMapper(executor, max_workers=max_workers)
