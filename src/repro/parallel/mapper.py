"""Deterministic fan-out/gather of independent jobs over an executor backend.

:class:`ParallelMapper` is the one object the rest of the library talks to
when it wants work spread over cores: the distributed map phase hands it one
job per machine, the sketch ensemble hands it one greedy run per replica,
and the benchmark sweeps hand it one configuration per row.  Whatever the
backend, :meth:`ParallelMapper.map` returns results **in input order** —
job ``i``'s result sits at index ``i`` — so callers that merge results
(e.g. :func:`repro.distributed.coordinator.merge_machine_sketches`) see
exactly the sequence a serial loop would have produced and stay
byte-identical across backends.  :meth:`ParallelMapper.map_unordered` is the
as-completed variant: it yields ``(index, result)`` pairs the moment each
job finishes, for callers whose gather is order-independent (an associative
reduce can start merging while the slowest mapper is still running).

Pool lifecycle: by default every map call owns its pool (create, use, shut
down).  A caller that issues several maps back to back — or wants the pool
warm while it consumes an unordered gather — wraps them in
:meth:`ParallelMapper.pool_scope`, which creates the pool lazily on first
use and keeps it alive until the scope exits, so one distributed run pays
worker start-up once instead of per call.

Robustness: pool creation can fail in restricted sandboxes (no ``/dev/shm``,
seccomp-filtered ``fork``); the mapper degrades to the serial loop in that
case rather than crashing, because every backend computes the same results.
Job *exceptions* are never swallowed — they propagate to the caller exactly
as the serial loop would raise them.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, Executor, Future, as_completed
from contextlib import contextmanager
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterable, Iterator, TypeVar

from repro import obs
from repro.obs import clock
from repro.parallel.executors import ExecutorBackend, resolve_executor, usable_cpus
from repro.utils.validation import check_positive_int

__all__ = ["ParallelMapper", "as_mapper"]

Job = TypeVar("Job")
Result = TypeVar("Result")


@dataclass(frozen=True)
class _InstrumentedOutcome:
    """What an instrumented job ships back beside its result.

    ``started`` is the worker's ``perf_counter`` at job entry — on this
    platform the monotonic clock is system-wide, so the coordinator can
    subtract its submit instant to get queue wait (clamped at zero where
    clocks are not comparable).  ``spans`` are the worker-side
    :class:`~repro.obs.trace.SpanRecord`\\ s, plain data riding home for
    :func:`repro.obs.adopt` to stitch under the coordinator's span.
    """

    value: Any
    started: float
    execute_seconds: float
    spans: tuple


def _run_instrumented(
    fn: Callable[[Job], Result], indexed_job: tuple[int, Job]
) -> _InstrumentedOutcome:
    """Run one job under a span capture, timing it on the worker's clock.

    Module-level on purpose (the ``picklable-jobs`` contract): this is what
    actually crosses into process-pool workers when tracing is on.
    """
    index, job = indexed_job
    started = clock.perf_counter()
    with obs.capture(lane=f"worker-{index}") as captured:
        value = fn(job)
    return _InstrumentedOutcome(
        value=value,
        started=started,
        execute_seconds=clock.perf_counter() - started,
        spans=tuple(captured.records()),
    )


class ParallelMapper:
    """Maps a function over independent jobs through an executor backend.

    Parameters
    ----------
    executor:
        A backend name (``"serial"``, ``"thread"``, ``"process"``),
        ``"auto"`` (process when more than one CPU is usable), ``None``
        (serial) or an :class:`~repro.parallel.executors.ExecutorBackend`
        instance.  ``None`` *with* an explicit ``max_workers`` resolves to
        ``"auto"`` — asking for a worker count is asking for parallelism,
        and the serial backend has no pool to cap, so every layer
        (``DistributedKCover``, ``ProblemSpec.map_workers``, ``solve()``,
        the CLI) honours a bare worker count the same way instead of
        silently running serial.
    max_workers:
        Pool size cap for the parallel backends; defaults to
        :func:`~repro.parallel.executors.usable_cpus`.  The effective pool
        never exceeds the number of jobs.
    """

    def __init__(
        self,
        executor: str | ExecutorBackend | None = "auto",
        *,
        max_workers: int | None = None,
    ) -> None:
        if max_workers is not None:
            check_positive_int(max_workers, "max_workers")
            if executor is None:
                executor = "auto"
        self.backend = resolve_executor(executor)
        self.max_workers = max_workers
        #: What the most recent :meth:`map` / :meth:`map_unordered` call
        #: actually executed with — ``(backend name, pool size)``.  Differs
        #: from the configured backend only when the sandbox fallback had to
        #: run the jobs serially, so reports can record the truth instead of
        #: the plan.
        self.last_execution: tuple[str, int] = (self.backend.name, 1)
        # pool_scope state: a scope keeps one lazily-created pool alive
        # across the maps issued inside it.  ``_scope_broken`` remembers a
        # failed creation so the rest of the scope goes straight to the
        # serial loop instead of re-attempting a doomed pool per call.
        self._scope_depth = 0
        self._scope_pool: Executor | None = None
        self._scope_broken = False

    @property
    def is_serial(self) -> bool:
        """Whether jobs run inline (no fan-out set-up cost, no pickling)."""
        return not self.backend.parallel

    def workers_for(self, num_jobs: int) -> int:
        """The pool size :meth:`map` would use for ``num_jobs`` jobs.

        ``min(max_workers, num_jobs)`` — an explicit ``max_workers`` is an
        operator override and is deliberately *not* clamped to
        :func:`usable_cpus` (oversubscription is legitimate for IO-heavy
        jobs); only the default derives from the CPU quota.
        """
        if self.is_serial or num_jobs <= 1:
            return 1
        limit = self.max_workers if self.max_workers is not None else usable_cpus()
        return max(1, min(limit, num_jobs))

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #
    @contextmanager
    def pool_scope(self) -> Iterator["ParallelMapper"]:
        """Reuse one pool across every map issued inside the ``with`` body.

        The pool is created lazily by the first parallel map in the scope
        (and sized for it; later maps reuse it as-is) and shut down when the
        outermost scope exits, so a multi-call pipeline — e.g. a distributed
        run's map fan-out plus its streaming reduce — pays worker start-up
        once.  Scopes nest: inner scopes share the outer scope's pool.  A
        pool-creation failure inside a scope marks the whole scope broken
        (serial loop for its remaining maps); pool *breakage* mid-map
        discards the scoped pool so later maps in the scope fall back
        cleanly rather than resubmitting to a dead pool.  Serial mappers
        pass through unchanged.
        """
        self._scope_depth += 1
        try:
            yield self
        finally:
            self._scope_depth -= 1
            if self._scope_depth == 0:
                pool, self._scope_pool = self._scope_pool, None
                self._scope_broken = False
                if pool is not None:
                    pool.shutdown(wait=True, cancel_futures=True)

    def _acquire_pool(self, workers: int) -> tuple[Executor | None, bool]:
        """A pool for one map call: ``(pool, owned)``; ``(None, False)`` = serial.

        Inside a :meth:`pool_scope` the scoped pool is created on first use
        and returned un-owned (the scope exit shuts it down); outside, the
        caller owns the fresh pool and must release it.
        """
        if self._scope_depth > 0:
            if self._scope_broken:
                return None, False
            if self._scope_pool is None:
                try:
                    self._scope_pool = self.backend.make_pool(workers)
                except OSError:  # pragma: no cover - sandbox fallback
                    self._scope_broken = True
                    return None, False
            return self._scope_pool, False
        try:
            return self.backend.make_pool(workers), True
        except OSError:  # pragma: no cover - sandbox fallback
            return None, False

    def _release_pool(self, pool: Executor, owned: bool, broken: bool) -> None:
        """Close an owned pool; drop a scoped pool only if it broke mid-map."""
        if owned:
            pool.shutdown(wait=True, cancel_futures=True)
        elif broken:
            pool.shutdown(wait=True, cancel_futures=True)
            self._scope_pool = None
            self._scope_broken = True

    # ------------------------------------------------------------------ #
    # ordered gather
    # ------------------------------------------------------------------ #
    def map(self, fn: Callable[[Job], Result], jobs: Iterable[Job]) -> list[Result]:
        """Apply ``fn`` to every job; results come back in input order.

        With tracing enabled (:func:`repro.obs.enabled`) each job runs under
        a worker-side span capture and ships its spans and timings back with
        its result; the coordinator stitches the spans under its open span
        and records queue-wait/execute histograms.  Disabled, this dispatch
        costs one attribute load and the plain path below runs unchanged.
        """
        jobs = list(jobs)
        if not obs.enabled():
            return self._map_plain(fn, jobs)
        submitted = clock.perf_counter()
        outcomes = self._map_plain(
            partial(_run_instrumented, fn), list(enumerate(jobs))
        )
        return [
            self._absorb_outcome(outcome, submitted) for outcome in outcomes
        ]

    def _absorb_outcome(
        self, outcome: _InstrumentedOutcome, submitted: float
    ) -> Any:
        """Record one instrumented job's telemetry; return its real result."""
        metrics = obs.global_metrics()
        metrics.counter("parallel.jobs").inc()
        metrics.histogram("parallel.queue_wait_seconds").observe(
            max(0.0, outcome.started - submitted)
        )
        metrics.histogram("parallel.execute_seconds").observe(
            outcome.execute_seconds
        )
        obs.adopt(outcome.spans)
        return outcome.value

    def _map_plain(
        self, fn: Callable[[Job], Result], jobs: list[Job]
    ) -> list[Result]:
        """The uninstrumented ordered gather (the disabled-path hot loop).

        The serial backend (and any degenerate pool of one worker) runs the
        plain loop.  Parallel backends submit every job up front and gather
        by future — submission order, not completion order — so the returned
        list is independent of scheduling.

        A backend whose pool cannot be used in the current environment falls
        back to the serial loop.  Workers are spawned lazily, so the guard
        covers construction *and* submission (a seccomp-blocked ``fork``
        surfaces as ``OSError``/``RuntimeError`` from ``submit``, not from
        the constructor) plus :class:`BrokenExecutor` from the gather (a
        worker killed by the environment).  Exceptions raised by a *job*
        come out of ``future.result()`` with their own types and propagate
        untouched — never swallowed, never retried.  Jobs are pure
        descriptions of work, so the serial retry after a pool-level
        failure recomputes, never double-applies.  ``last_execution``
        records what actually ran — ``("serial", 1)`` after a fallback —
        so callers report the truth, not the plan.
        """
        jobs = list(jobs)
        workers = self.workers_for(len(jobs))
        if workers == 1 or self.backend.make_pool is None:
            self.last_execution = (self.backend.name, 1)
            return [fn(job) for job in jobs]
        self.last_execution = (self.backend.name, workers)
        pool, owned = self._acquire_pool(workers)
        if pool is None:
            return self._fallback(fn, jobs)
        # On a pool-level failure, fall through WITHOUT rescuing yet: the
        # finally clause first drains/cancels everything already submitted,
        # so the serial rescue below never runs concurrently with a
        # half-finished pool job.
        broken = False
        futures: list[Future] = []
        try:
            try:
                futures = [pool.submit(fn, job) for job in jobs]
            except (OSError, RuntimeError, BrokenExecutor):
                broken = True  # pragma: no cover - worker spawn blocked at submit
            else:
                try:
                    return [future.result() for future in futures]
                except BrokenExecutor:  # pragma: no cover - pool died mid-run
                    broken = True
        finally:
            for future in futures:
                future.cancel()
            self._release_pool(pool, owned, broken)
        return self._fallback(fn, jobs)  # pragma: no cover - sandbox fallback

    # ------------------------------------------------------------------ #
    # as-completed gather
    # ------------------------------------------------------------------ #
    def map_unordered(
        self, fn: Callable[[Job], Result], jobs: Iterable[Job]
    ) -> Iterator[tuple[int, Result]]:
        """Yield ``(index, result)`` pairs as jobs complete.

        Instrumented exactly like :meth:`map` when tracing is on (worker
        span capture rides back per job, queue-wait/execute histograms on
        arrival); disabled, the plain as-completed path runs unchanged.
        """
        jobs = list(jobs)
        if not obs.enabled():
            yield from self._map_unordered_plain(fn, jobs)
            return
        submitted = clock.perf_counter()
        for index, outcome in self._map_unordered_plain(
            partial(_run_instrumented, fn), list(enumerate(jobs))
        ):
            yield index, self._absorb_outcome(outcome, submitted)

    def _map_unordered_plain(
        self, fn: Callable[[Job], Result], jobs: list[Job]
    ) -> Iterator[tuple[int, Result]]:
        """The uninstrumented as-completed gather.

        The *set* of pairs equals ``list(enumerate(self.map(fn, jobs)))``;
        only the order is scheduling-dependent (the serial backend yields in
        input order).  Callers whose gather is order-independent — an
        associative streaming reduce — consume results while slower jobs are
        still running, instead of waiting for the whole barrier.

        Fallback semantics match :meth:`map`: a pool that cannot be created
        or breaks mid-run is drained, then the jobs not yet yielded rerun
        serially (``last_execution`` records ``("serial", 1)``).  Job
        exceptions propagate untouched.  Abandoning the generator early
        cancels the pending futures and releases the pool.
        """
        jobs = list(jobs)
        workers = self.workers_for(len(jobs))
        if workers == 1 or self.backend.make_pool is None:
            self.last_execution = (self.backend.name, 1)
            for index, job in enumerate(jobs):
                yield index, fn(job)
            return
        self.last_execution = (self.backend.name, workers)
        pool, owned = self._acquire_pool(workers)
        if pool is None:
            yield from self._fallback_unordered(fn, jobs, frozenset())
            return
        broken = False
        done: set[int] = set()
        futures: dict[Future, int] = {}
        try:
            try:
                futures = {pool.submit(fn, job): i for i, job in enumerate(jobs)}
            except (OSError, RuntimeError, BrokenExecutor):
                broken = True  # pragma: no cover - worker spawn blocked at submit
            else:
                try:
                    for future in as_completed(futures):
                        index = futures[future]
                        result = future.result()
                        done.add(index)
                        yield index, result
                except BrokenExecutor:  # pragma: no cover - pool died mid-run
                    broken = True
        finally:
            for future in futures:
                future.cancel()
            self._release_pool(pool, owned, broken)
        if broken:  # pragma: no cover - sandbox fallback
            yield from self._fallback_unordered(fn, jobs, done)

    def _fallback(self, fn: Callable[[Job], Result], jobs: list[Job]) -> list[Result]:
        """The serial rescue loop for pool-level failures (recorded as such)."""
        self.last_execution = ("serial", 1)
        return [fn(job) for job in jobs]

    def _fallback_unordered(
        self,
        fn: Callable[[Job], Result],
        jobs: list[Job],
        already_yielded: "frozenset[int] | set[int]",
    ) -> Iterator[tuple[int, Result]]:
        """Serial rescue for :meth:`map_unordered`: rerun only un-yielded jobs."""
        self.last_execution = ("serial", 1)
        for index, job in enumerate(jobs):
            if index not in already_yielded:
                yield index, fn(job)

    def describe(self) -> dict[str, Any]:
        """Diagnostics for reports and tables."""
        return {
            "executor": self.backend.name,
            "max_workers": self.max_workers,
            "usable_cpus": usable_cpus(),
        }


def as_mapper(
    executor: "str | ExecutorBackend | ParallelMapper | None",
    max_workers: int | None = None,
) -> ParallelMapper:
    """Normalise the executor arguments callers accept into a mapper.

    An existing :class:`ParallelMapper` passes through (``max_workers`` must
    then be unset — the mapper already carries one); anything else is handed
    to the constructor.
    """
    if isinstance(executor, ParallelMapper):
        if max_workers is not None and max_workers != executor.max_workers:
            raise ValueError(
                "pass max_workers to the ParallelMapper constructor, not "
                "alongside an already-built mapper"
            )
        return executor
    return ParallelMapper(executor, max_workers=max_workers)
