"""Pluggable executor runtime for the embarrassingly parallel phases.

The paper's distributed map phase, the ensemble's independent replicas and
the benchmark sweeps all consist of jobs that share nothing until a final
gather.  This subpackage makes running them on real cores a first-class,
pluggable concern:

* :mod:`repro.parallel.executors` — the executor-backend registry
  (``serial`` / ``thread`` / ``process`` plus ``auto`` selection), mirroring
  the coverage-kernel registry so new backends drop in by name.
* :mod:`repro.parallel.mapper` — :class:`ParallelMapper`, the deterministic
  fan-out/gather primitive: results always come back in input order, so
  parallel runs stay byte-identical to serial ones.

The job *protocol* lives with its callers: the distributed layer ships
picklable job descriptions (columnar path + row bounds) so no edge data
crosses a process boundary — see :mod:`repro.distributed.worker`.
"""

from repro.parallel.executors import (
    ExecutorBackend,
    executor_choices,
    get_executor,
    list_executors,
    register_executor,
    resolve_executor,
    unregister_executor,
    usable_cpus,
)
from repro.parallel.mapper import ParallelMapper, as_mapper

__all__ = [
    "ExecutorBackend",
    "register_executor",
    "unregister_executor",
    "get_executor",
    "resolve_executor",
    "list_executors",
    "executor_choices",
    "usable_cpus",
    "ParallelMapper",
    "as_mapper",
]
