"""Pluggable executor backends for fanning independent jobs over real cores.

The paper's distributed map phase is embarrassingly parallel: every machine
sketches its own shard with a shared hash function and never talks to the
others until the reduce.  Simulating the machines sequentially therefore
leaves real hardware on the table.  An :class:`ExecutorBackend` encapsulates
*how* a list of independent jobs is mapped:

* ``"serial"`` — a plain comprehension in the calling thread.  Zero overhead
  and no pickling requirements; the default, and the reference semantics the
  other backends must match result-for-result.
* ``"thread"`` — a :class:`concurrent.futures.ThreadPoolExecutor`.  No
  pickling, shared memory; pays off when the jobs release the GIL (large
  vectorised batches do, pure-Python admission loops do not).
* ``"process"`` — a :class:`concurrent.futures.ProcessPoolExecutor`.  True
  multi-core parallelism; jobs and results must be picklable, so the
  distributed map phase ships *descriptions* of work (a columnar path plus
  row bounds) instead of edge data.
* ``"auto"`` — resolves to ``"process"`` when more than one CPU is usable
  and to ``"serial"`` otherwise.

Backends register by name in a :class:`~repro.utils.registry.NamedRegistry`,
mirroring :mod:`repro.coverage.kernels`: an accelerator- or cluster-backed
executor can plug in with :func:`register_executor` and immediately be
selectable through ``DistributedKCover(executor=...)``,
``ProblemSpec.executor`` and the CLI's ``--executor``.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.errors import SpecError
from repro.utils.registry import NamedRegistry

__all__ = [
    "ExecutorBackend",
    "register_executor",
    "unregister_executor",
    "get_executor",
    "resolve_executor",
    "list_executors",
    "executor_choices",
    "usable_cpus",
]


def usable_cpus() -> int:
    """Number of CPUs the current process may actually run on (at least 1).

    Prefers the scheduling affinity mask (what a cgroup/container grants)
    over the raw core count, so ``auto`` selection and default worker counts
    respect CPU quotas.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ExecutorBackend:
    """One strategy for mapping independent jobs.

    Attributes
    ----------
    name:
        Registry key (``"serial"``, ``"thread"``, ``"process"``, ...).
    parallel:
        Whether the backend can overlap jobs at all (``False`` for serial;
        used by callers to skip fan-out set-up costs).
    requires_pickling:
        Whether jobs and results cross a process boundary; callers use this
        to choose a zero-copy job encoding (e.g. path + row bounds instead
        of edge columns).
    summary:
        One-line description for tables and diagnostics.
    make_pool:
        ``max_workers -> Executor`` factory, or ``None`` for backends that
        run inline (serial).  Pools are created per :meth:`ParallelMapper.map
        <repro.parallel.mapper.ParallelMapper.map>` call and always closed.
    """

    name: str
    parallel: bool
    requires_pickling: bool
    summary: str
    make_pool: Callable[[int], Executor] | None


_REGISTRY: NamedRegistry[ExecutorBackend] = NamedRegistry(
    "executor backend", SpecError, "repro.parallel.list_executors()"
)


def register_executor(backend: ExecutorBackend) -> ExecutorBackend:
    """Register a backend under its name; duplicates raise :class:`SpecError`."""
    if backend.name == "auto":
        raise SpecError("'auto' is reserved for executor auto-selection")
    _REGISTRY.add(backend.name, backend)
    return backend


def unregister_executor(name: str) -> None:
    """Remove a registered backend (mainly for tests and plugins)."""
    _REGISTRY.remove(name)


def get_executor(name: str) -> ExecutorBackend:
    """Look up a backend by exact name (``"auto"`` is not a concrete backend)."""
    return _REGISTRY.get(name)


def list_executors() -> list[str]:
    """Sorted names of the registered backends (excluding ``"auto"``)."""
    return _REGISTRY.names()


def resolve_executor(executor: str | ExecutorBackend | None = "auto") -> ExecutorBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` and ``"serial"`` both resolve to the serial backend; ``"auto"``
    picks the process backend when more than one CPU is usable and the
    serial backend otherwise (a single core cannot overlap CPU-bound map
    jobs, so the fan-out overhead would be pure loss).
    """
    if isinstance(executor, ExecutorBackend):
        return executor
    if executor is None:
        return get_executor("serial")
    if executor == "auto":
        return get_executor("process" if usable_cpus() > 1 else "serial")
    return get_executor(executor)


register_executor(
    ExecutorBackend(
        name="serial",
        parallel=False,
        requires_pickling=False,
        summary="in-thread loop (zero overhead, the reference semantics)",
        make_pool=None,
    )
)

register_executor(
    ExecutorBackend(
        name="thread",
        parallel=True,
        requires_pickling=False,
        summary="ThreadPoolExecutor (shared memory; overlaps GIL-releasing work)",
        make_pool=lambda max_workers: ThreadPoolExecutor(max_workers=max_workers),
    )
)

register_executor(
    ExecutorBackend(
        name="process",
        parallel=True,
        requires_pickling=True,
        summary="ProcessPoolExecutor (real cores; jobs/results must pickle)",
        make_pool=lambda max_workers: ProcessPoolExecutor(max_workers=max_workers),
    )
)


def executor_choices() -> tuple[str, ...]:
    """Valid values for user-facing executor options (CLI, specs)."""
    return ("auto", *list_executors())
