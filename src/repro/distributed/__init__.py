"""Distributed (MapReduce-style) coverage maximisation via composable sketches.

This subpackage implements the companion-paper application the SPAA paper
mentions in §1.3.2 and its conclusion: because every machine sketches its
shard with a shared hash function, the coordinator can merge the shard
sketches into a sketch of the full input and solve there — two rounds, with
per-machine space and communication both bounded by the sketch size.

The pipeline is batched end to end: :class:`EdgePartitioner` shards whole
columnar event batches in one vectorised assignment, workers ingest batches
through the sketch builder's native path, and the coordinator's merge is one
lexsort admission pass over the stacked shard columns — run either as one
barrier merge or as a streaming binary merge tree that folds sketches in as
they complete (:class:`StreamingMergeTree`, O(log machines) resident,
byte-identical).  :meth:`DistributedKCover.run_from_columnar` ships zero
edge bytes for every partition strategy: workers re-open the memory-mapped
columnar directory themselves, via row bounds (:class:`ColumnarSliceJob`)
or deterministic local re-routing (:class:`ShardRecomputeJob`).
"""

from repro.distributed.coordinator import (
    REDUCE_MODES,
    DistributedKCover,
    DistributedRunReport,
    StreamingMergeTree,
    merge_machine_sketches,
)
from repro.distributed.partition import (
    PARTITION_STRATEGIES,
    EdgePartitioner,
    partition_edges,
    row_range_bounds,
    shard_sizes,
)
from repro.distributed.worker import (
    DEFAULT_MAP_BATCH,
    ColumnarSliceJob,
    MachineShardJob,
    MachineSketch,
    ShardRecomputeJob,
    build_all_machine_sketches,
    build_machine_sketch,
    execute_map_job,
)

__all__ = [
    "REDUCE_MODES",
    "DistributedKCover",
    "DistributedRunReport",
    "StreamingMergeTree",
    "merge_machine_sketches",
    "PARTITION_STRATEGIES",
    "EdgePartitioner",
    "partition_edges",
    "row_range_bounds",
    "shard_sizes",
    "DEFAULT_MAP_BATCH",
    "MachineSketch",
    "MachineShardJob",
    "ColumnarSliceJob",
    "ShardRecomputeJob",
    "execute_map_job",
    "build_all_machine_sketches",
    "build_machine_sketch",
]
