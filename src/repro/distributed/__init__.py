"""Distributed (MapReduce-style) coverage maximisation via composable sketches.

This subpackage implements the companion-paper application the SPAA paper
mentions in §1.3.2 and its conclusion: because every machine sketches its
shard with a shared hash function, the coordinator can merge the shard
sketches into a sketch of the full input and solve there — two rounds, with
per-machine space and communication both bounded by the sketch size.
"""

from repro.distributed.coordinator import (
    DistributedKCover,
    DistributedRunReport,
    merge_machine_sketches,
)
from repro.distributed.partition import PARTITION_STRATEGIES, partition_edges, shard_sizes
from repro.distributed.worker import (
    MachineSketch,
    build_all_machine_sketches,
    build_machine_sketch,
)

__all__ = [
    "DistributedKCover",
    "DistributedRunReport",
    "merge_machine_sketches",
    "PARTITION_STRATEGIES",
    "partition_edges",
    "shard_sizes",
    "MachineSketch",
    "build_all_machine_sketches",
    "build_machine_sketch",
]
