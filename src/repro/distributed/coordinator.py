"""Coordinator: merge machine sketches and solve coverage problems on the merge.

The merge rule exploits the structure of ``H_{<=n}``:

1. Every machine used the **same** hash function, so an element's rank is
   global.  A machine's sketch contains, for every element below its local
   threshold, *all* of that element's shard edges (up to the degree cap).
2. The coordinator therefore keeps only elements whose rank is below the
   **minimum** of the machines' thresholds — for those elements the union of
   the shard edges is the element's full (capped) global edge set.
3. The union is then re-capped and re-trimmed to the global edge budget in
   rank order, exactly as the offline Algorithm 1 would, yielding a sketch of
   the *whole* input.  In particular the merged threshold follows Algorithm
   1's convention: the hash of the last **admitted** element when the budget
   truncates the union, the global minimum otherwise.

This is the composability property the companion paper builds its MapReduce
algorithms on; :class:`DistributedKCover` packages it into a two-round
distributed k-cover: round 1 — machines sketch their shards; round 2 — the
coordinator merges and runs the offline greedy (optionally on a packed
coverage kernel, see ``coverage_backend``).

Reduce modes
------------
The merge operator is associative and commutative (the admission pass
depends only on the multiset of surviving ``(set, element, rank)`` rows, not
on how they were grouped), so the reduce does not have to be a barrier.
:class:`StreamingMergeTree` merges machine sketches pairwise **as they
arrive** from :meth:`~repro.parallel.ParallelMapper.map_unordered` — a
binary-counter tree that keeps at most ``O(log num_machines)`` sketches
resident for *any* arrival order and produces the byte-identical final
sketch the one-shot barrier merge produces (property-tested across
executors, worker counts and adversarial arrival orders).  The ``reduce``
knob selects the mode; ``streaming`` is the default.

The whole pipeline is columnar: sharding decides whole
:class:`~repro.streaming.batches.EventBatch` columns at a time
(:class:`~repro.distributed.partition.EdgePartitioner`), workers ingest
batches through the sketch builder's vectorised path, and the merge itself
stacks the shard sketches' edge columns and runs one lexsort admission pass.
:meth:`DistributedKCover.run_from_columnar` closes the loop for on-disk
inputs: with a parallel executor **every** partition strategy ships only a
job description — ``row_range`` slices carry path + row bounds
(:class:`~repro.distributed.worker.ColumnarSliceJob`), every other strategy
carries path + routing parameters and recomputes its shard locally
(:class:`~repro.distributed.worker.ShardRecomputeJob`) — so the coordinator
never materialises a single per-edge Python tuple and no edge bytes cross a
process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.coverage.bipartite import BipartiteGraph
from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import CoverageSketch
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.distributed.partition import EdgePartitioner, row_range_bounds
from repro.distributed.worker import (
    DEFAULT_MAP_BATCH,
    ColumnarSliceJob,
    MachineShardJob,
    MachineSketch,
    MapJob,
    ShardRecomputeJob,
    execute_map_job,
)
from repro.offline.greedy import greedy_k_cover
from repro.parallel import ExecutorBackend, ParallelMapper, as_mapper
from repro.streaming.batches import EventBatch
from repro.streaming.stream import EdgeStream
from repro.utils.validation import check_positive_int

__all__ = [
    "REDUCE_MODES",
    "merge_machine_sketches",
    "StreamingMergeTree",
    "DistributedRunReport",
    "DistributedKCover",
]

#: How the coordinator gathers machine sketches: ``barrier`` holds all of
#: them and merges once; ``streaming`` merges pairwise as they arrive,
#: keeping O(log machines) resident.  Both produce byte-identical runs.
REDUCE_MODES = ("barrier", "streaming")

#: Reduce telemetry (process-global; the per-run truth stays in the report).
#: Created once at import so :func:`repro.obs.MetricsRegistry.reset` between
#: runs zeroes these handles in place instead of orphaning them.
_MERGES = obs.global_metrics().counter(
    "distributed.merges", help="pairwise sketch merges run by any reduce"
)
_FOLD_HEIGHT = obs.global_metrics().histogram(
    "distributed.fold_height",
    buckets=obs.SIZE_BUCKETS,
    help="merge-tree subtree height at each streaming fold",
)
_RESIDENT = obs.global_metrics().gauge(
    "distributed.resident_sketches",
    help="machine sketches held by the coordinator right now (max = peak)",
)


def _sketch_columns(sketch: CoverageSketch) -> tuple[np.ndarray, np.ndarray]:
    """One shard sketch's edges as parallel uint64 (set, element) columns."""
    count = sketch.num_edges
    sets = np.empty(count, dtype=np.uint64)
    elements = np.empty(count, dtype=np.uint64)
    for row, (set_id, element) in enumerate(sketch.graph.edges()):
        sets[row] = set_id
        elements[row] = element
    return sets, elements


def merge_machine_sketches(
    machine_sketches: Sequence[MachineSketch],
    params: SketchParams,
    *,
    hash_seed: int = 0,
) -> CoverageSketch:
    """Merge per-shard sketches into a sketch of the union of the shards.

    The shard columns are stacked and the offline admission (rank order,
    degree cap, edge budget) runs as one vectorised lexsort pass — the array
    restatement of Algorithm 1, byte-identical to the per-element loop.  When
    the union overflows the edge budget the merged threshold is the hash of
    the last *admitted* element, matching
    :func:`repro.core.sketch.build_h_leq_n` (the data-dependent ``p*``); a
    union that fits keeps the global minimum of the machine thresholds.
    """
    if not machine_sketches:
        raise ValueError("need at least one machine sketch to merge")
    return _merge_sketches(
        [ms.sketch for ms in machine_sketches], params, hash_seed=hash_seed
    )


def _merge_sketches(
    sketches: Sequence[CoverageSketch],
    params: SketchParams,
    *,
    hash_seed: int = 0,
) -> CoverageSketch:
    """The admission pass over raw sketches (the associative merge operator).

    Associativity/commutativity, which the streaming tree relies on: the
    lexsort realises one global total order by ``(rank, element, set)``, so
    the surviving rows depend only on the *multiset* of input rows.  An
    intermediate merge can only (a) drop whole elements whose rank exceeds
    its own admitted threshold — but that threshold is itself >= the final
    one, so those elements would be dropped at the root anyway — and (b)
    cap an element's owners to the smallest ``degree_cap`` set ids —
    smallest-of-union selection, which is associative.  Hash ties between
    distinct elements (probability ~2^-64) are the only caveat, the same
    caveat the barrier merge already carries.
    """
    hash_fn = UniformHash(hash_seed)
    global_threshold = min(sketch.threshold for sketch in sketches)

    # Stack the shard columns, restricted to globally-admitted elements.
    columns = [_sketch_columns(sketch) for sketch in sketches]
    sets = np.concatenate([c[0] for c in columns])
    elements = np.concatenate([c[1] for c in columns])
    merged = BipartiteGraph(params.num_sets)
    if len(sets) == 0:
        return CoverageSketch(
            graph=merged, params=params, threshold=global_threshold
        )
    ranks = hash_fn.value_many(elements)
    keep = ranks <= global_threshold
    sets, elements, ranks = sets[keep], elements[keep], ranks[keep]

    # One stable lexsort realises Algorithm 1's admission order: elements by
    # (rank, id), each element's owners by ascending set id — so the degree
    # cap keeps the same smallest-id owners the offline builder keeps.
    order = np.lexsort((sets, elements, ranks))
    sets, elements, ranks = sets[order], elements[order], ranks[order]
    # Drop duplicate edges (the same input edge can only live in one shard,
    # but duplicate input edges may land in different shards).
    fresh = np.ones(len(sets), dtype=bool)
    fresh[1:] = (elements[1:] != elements[:-1]) | (sets[1:] != sets[:-1])
    sets, elements, ranks = sets[fresh], elements[fresh], ranks[fresh]

    if len(elements) == 0:
        return CoverageSketch(
            graph=merged, params=params, threshold=global_threshold
        )
    # Element runs are contiguous after the sort; cap each run's degree and
    # admit runs while the stored-edge prefix is below the budget.
    starts_mask = np.ones(len(elements), dtype=bool)
    starts_mask[1:] = elements[1:] != elements[:-1]
    run_starts = np.flatnonzero(starts_mask)
    run_id = np.cumsum(starts_mask) - 1
    degrees = np.diff(np.append(run_starts, len(elements)))
    within_run = np.arange(len(elements)) - run_starts[run_id]
    capped = within_run < params.degree_cap
    capped_degrees = np.minimum(degrees, params.degree_cap)
    edges_before = np.concatenate(([0], np.cumsum(capped_degrees)[:-1]))
    admitted_runs = edges_before < params.edge_budget

    stored = capped & admitted_runs[run_id]
    for set_id, element in zip(sets[stored].tolist(), elements[stored].tolist()):
        merged.add_edge(set_id, element)
    admitted_rows = run_starts[admitted_runs]
    hashes = dict(
        zip(elements[admitted_rows].tolist(), ranks[admitted_rows].tolist())
    )
    truncated = frozenset(
        elements[run_starts[admitted_runs & (degrees > params.degree_cap)]].tolist()
    )
    if bool(admitted_runs.all()) or len(admitted_rows) == 0:
        threshold = global_threshold
    else:
        # Algorithm 1's convention: p* is the hash of the last admitted
        # element (ranks are sorted, so that is the final admitted row).
        threshold = float(ranks[admitted_rows[-1]])
    return CoverageSketch(
        graph=merged,
        params=params,
        threshold=threshold,
        element_hashes=hashes,
        truncated_elements=truncated,
    )


@dataclass
class _MergeNode:
    """One in-flight subtree of the streaming reduce.

    ``carried`` accumulates the degree-cap truncation flags the *flat* merge
    would have computed: an intermediate pass sees already-capped child
    degrees, so its own ``truncated_elements`` under-reports whenever the
    true union degree exceeded the cap at a lower level.  The propagation
    rule ``computed ∪ ((left ∪ right) ∩ admitted)`` restores exactly the
    flat set (leaves carry nothing — the barrier merge ignores the machines'
    own shard-level flags the same way).
    """

    height: int
    sketch: CoverageSketch
    carried: frozenset[int]


class StreamingMergeTree:
    """Incremental pairwise reduce of machine sketches, O(log M) resident.

    Sketches enter as height-0 subtrees; whenever two subtrees of equal
    height exist they merge immediately (a binary counter over subtree
    heights), so at most ``log2(M) + 1`` sketches are ever resident at the
    coordinator **regardless of arrival order** — a fixed-shape tree would
    degrade to ``M/2`` resident under an adversarial order.  Because the
    merge operator is associative and commutative (see
    :func:`_merge_sketches`), the final sketch is byte-identical to the
    one-shot barrier merge for every arrival order, even though the
    intermediate groupings differ.

    ``peak_resident`` and ``merge_count`` feed the run report;
    :meth:`result` drains the remaining subtrees (total pairwise merges:
    ``M - 1``) and may be called once.
    """

    def __init__(self, params: SketchParams, *, hash_seed: int = 0) -> None:
        self.params = params
        self.hash_seed = hash_seed
        self._slots: list[_MergeNode | None] = []
        self._added = 0
        #: Pairwise merge passes run so far (``M - 1`` after :meth:`result`).
        self.merge_count = 0
        #: Sketches currently held (slots plus the one being sifted in).
        self.resident = 0
        #: High-water mark of ``resident`` — the memory model the report and
        #: the benchmark gate: O(log M) vs the barrier's M.
        self.peak_resident = 0

    def add(self, machine_sketch: MachineSketch) -> None:
        """Fold one arriving machine sketch into the tree (carry-merge)."""
        node = _MergeNode(
            height=0, sketch=machine_sketch.sketch, carried=frozenset()
        )
        self._added += 1
        self.resident += 1
        self.peak_resident = max(self.peak_resident, self.resident)
        _RESIDENT.set(self.resident)
        while node.height < len(self._slots) and self._slots[node.height] is not None:
            other = self._slots[node.height]
            self._slots[node.height] = None
            node = self._merge_pair(other, node)
        if node.height == len(self._slots):
            self._slots.append(None)
        self._slots[node.height] = node

    def _merge_pair(self, left: _MergeNode, right: _MergeNode) -> _MergeNode:
        """Merge two subtrees, propagating the carried truncation flags."""
        height = max(left.height, right.height) + 1
        with obs.span("reduce.fold", height=height):
            merged = _merge_sketches(
                [left.sketch, right.sketch], self.params, hash_seed=self.hash_seed
            )
        carried = frozenset(merged.truncated_elements) | frozenset(
            element
            for element in (left.carried | right.carried)
            if element in merged.element_hashes
        )
        self.merge_count += 1
        self.resident -= 1
        _MERGES.inc()
        _FOLD_HEIGHT.observe(height)
        _RESIDENT.set(self.resident)
        return _MergeNode(height=height, sketch=merged, carried=carried)

    def result(self) -> CoverageSketch:
        """Drain the remaining subtrees into the final merged sketch."""
        nodes = [node for node in self._slots if node is not None]
        if not nodes:
            raise ValueError("no machine sketches were added to the merge tree")
        self._slots = []
        node = nodes[0]
        for other in nodes[1:]:
            node = self._merge_pair(node, other)
        if self.merge_count == 0:
            # A single machine never pairs up, but the barrier merge still
            # runs one admission pass over that lone sketch — match it.
            with obs.span("reduce.merge", machines=1):
                merged = _merge_sketches(
                    [node.sketch], self.params, hash_seed=self.hash_seed
                )
            self.merge_count += 1
            _MERGES.inc()
            return merged
        return replace(node.sketch, truncated_elements=node.carried)


@dataclass
class DistributedRunReport:
    """Everything measured about one distributed run."""

    solution: list[int]
    coverage_estimate: float
    num_machines: int
    strategy: str
    rounds: int
    shard_edges: list[int] = field(default_factory=list)
    machine_stored_edges: list[int] = field(default_factory=list)
    coordinator_edges: int = 0
    communication_edges: int = 0
    merged_threshold: float = 1.0
    coverage_backend: str | None = None
    executor: str = "serial"
    map_workers: int = 1
    #: Which reduce gathered the machine sketches (see :data:`REDUCE_MODES`).
    reduce_mode: str = "barrier"
    #: Most machine sketches the coordinator held at once: ``num_machines``
    #: for the barrier, O(log num_machines) for the streaming tree.
    peak_resident_sketches: int = 0
    #: Merge passes the reduce ran: 1 for the barrier, ``num_machines - 1``
    #: pairwise passes for the streaming tree.
    merge_count: int = 0

    @property
    def max_machine_load(self) -> int:
        """Largest number of edges any machine had to store."""
        return max(self.machine_stored_edges, default=0)

    @property
    def min_machine_load(self) -> int:
        """Smallest number of edges any machine had to store."""
        return min(self.machine_stored_edges, default=0)

    @property
    def mean_machine_load(self) -> float:
        """Mean number of stored edges per machine."""
        if not self.machine_stored_edges:
            return 0.0
        return sum(self.machine_stored_edges) / len(self.machine_stored_edges)

    def as_dict(self) -> dict[str, object]:
        """Flatten for experiment tables.

        The per-machine load distribution is reported as min/mean/max columns
        for both the raw shard sizes and the stored (post-sketch) edges, so
        load-balance across sharding strategies shows up in result tables.
        """
        shard = self.shard_edges
        return {
            "num_machines": self.num_machines,
            "strategy": self.strategy,
            "rounds": self.rounds,
            "solution_size": len(self.solution),
            "coverage_estimate": self.coverage_estimate,
            "shard_edges_min": min(shard, default=0),
            "shard_edges_mean": (sum(shard) / len(shard)) if shard else 0.0,
            "shard_edges_max": max(shard, default=0),
            "machine_load_min": self.min_machine_load,
            "machine_load_mean": self.mean_machine_load,
            "machine_load_max": self.max_machine_load,
            "coordinator_edges": self.coordinator_edges,
            "communication_edges": self.communication_edges,
            "merged_threshold": self.merged_threshold,
            "coverage_backend": self.coverage_backend or "-",
            "executor": self.executor,
            "map_workers": self.map_workers,
            "reduce_mode": self.reduce_mode,
            "peak_resident_sketches": self.peak_resident_sketches,
            "merge_count": self.merge_count,
        }


class DistributedKCover:
    """Two-round distributed (MapReduce-style) k-cover via composable sketches.

    Parameters
    ----------
    num_sets, num_elements:
        Instance dimensions (known to every machine, as in the paper).
    k, epsilon:
        Problem and accuracy parameters.
    num_machines:
        Number of simulated machines.
    strategy:
        Edge partitioning strategy (see :mod:`repro.distributed.partition`).
    params:
        Explicit sketch budgets (defaults to Algorithm 3's choice).
    coverage_backend:
        Optional packed-bitset kernel backend name (``"auto"``, ``"bytes"``,
        ``"words"``); the coordinator's greedy then runs on a kernel packed
        from the merged sketch (same selections, faster on dense merges).
    batch_size:
        Map-phase batch size for the columnar paths.
    executor:
        Executor backend for the map phase (``"serial"``, ``"thread"``,
        ``"process"``, ``"auto"``, an
        :class:`~repro.parallel.ExecutorBackend` or a prebuilt
        :class:`~repro.parallel.ParallelMapper`); ``None`` keeps the serial
        loop.  Every backend produces byte-identical runs (property-tested).
    max_workers:
        Pool-size cap for the parallel executors (defaults to the usable
        CPU count).
    reduce:
        Reduce mode (see :data:`REDUCE_MODES`).  ``"streaming"`` (default)
        merges machine sketches pairwise as they complete — overlapping the
        reduce with the slowest mappers and holding O(log num_machines)
        sketches instead of all of them — ``"barrier"`` gathers every sketch
        first and merges once.  Byte-identical outcomes either way.
    """

    def __init__(
        self,
        num_sets: int,
        num_elements: int,
        k: int,
        epsilon: float = 0.2,
        *,
        num_machines: int = 4,
        strategy: str = "random",
        params: SketchParams | None = None,
        mode: str = "scaled",
        scale: float = 1.0,
        seed: int = 0,
        coverage_backend: str | None = None,
        batch_size: int = DEFAULT_MAP_BATCH,
        executor: str | ExecutorBackend | ParallelMapper | None = None,
        max_workers: int | None = None,
        reduce: str = "streaming",
    ) -> None:
        from repro.core.kcover import default_kcover_params

        check_positive_int(num_machines, "num_machines")
        check_positive_int(k, "k")
        check_positive_int(batch_size, "batch_size")
        if reduce not in REDUCE_MODES:
            raise ValueError(
                f"unknown reduce mode {reduce!r}; expected one of {REDUCE_MODES}"
            )
        self.num_sets = num_sets
        self.num_elements = num_elements
        self.k = k
        self.epsilon = epsilon
        self.num_machines = num_machines
        self.strategy = strategy
        self.seed = seed
        self.coverage_backend = coverage_backend
        self.batch_size = batch_size
        self.reduce = reduce
        self.mapper = as_mapper(executor, max_workers)
        self.params = params or default_kcover_params(
            num_sets, num_elements, k, epsilon, mode=mode, scale=scale
        )

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #
    def run(self, edges: Iterable[tuple[int, int]]) -> DistributedRunReport:
        """Execute the two distributed rounds on an in-memory edge set.

        The edges are packed into one columnar batch up front; sharding and
        the map phase then run entirely on the batched engine (identical
        results to per-edge sharding plus scalar workers, property-tested).
        """
        batch = edges if isinstance(edges, EventBatch) else EventBatch.from_edges(edges)
        return self.run_batched([batch], total_edges=len(batch))

    def run_batched(
        self,
        batches: Iterable[EventBatch],
        *,
        total_edges: int | None = None,
    ) -> DistributedRunReport:
        """Map a stream of edge batches across the machines and reduce.

        Each batch is routed in one vectorised assignment, each machine's
        sub-batch goes through its sketch builder's native ``process_batch``,
        and no per-edge Python objects are created anywhere.  ``total_edges``
        is only needed by the ``row_range`` strategy.

        With a parallel executor the sub-batches are first collected per
        machine and then fanned out as one
        :class:`~repro.distributed.worker.MachineShardJob` per machine —
        batch boundaries do not change a builder's final state (property-
        tested), so the collected feed is byte-identical to the serial
        incremental one.  Collection holds the whole pass's columns in
        coordinator memory (and the process backend additionally pickles
        each shard to its child), where the serial loop holds one batch at
        a time — the parallel win costs ``O(total_edges)`` resident.  For
        on-disk workloads prefer :meth:`run_from_columnar`, whose jobs ship
        no edge data for any strategy.
        """
        partitioner = EdgePartitioner(
            self.num_machines,
            strategy=self.strategy,
            seed=self.seed,
            total_edges=total_edges,
        )
        if not self.mapper.is_serial:
            return self._run_batched_parallel(batches, partitioner)
        builders = [
            StreamingSketchBuilder(self.params, hash_fn=UniformHash(self.seed))
            for _ in range(self.num_machines)
        ]
        shard_edges = [0] * self.num_machines
        for batch in batches:
            for machine, sub in enumerate(partitioner.split(batch)):
                if len(sub):
                    builders[machine].process_batch(sub)
                    shard_edges[machine] += len(sub)
        return self._reduce(self._drain_builders(builders), shard_edges)

    @staticmethod
    def _drain_builders(
        builders: Sequence[StreamingSketchBuilder],
    ) -> Iterator[MachineSketch]:
        """Finalise the serial builders one at a time (lazily, in machine order).

        Yielding lazily lets the streaming reduce fold machine ``i``'s
        sketch into the merge tree before machine ``i+1``'s is even built,
        so the serial path gets the same O(log M) resident-sketch bound as
        the parallel one.
        """
        for machine_id, builder in enumerate(builders):
            with obs.span("map.machine", machine=machine_id):
                sketch = builder.sketch()
            yield MachineSketch(
                machine_id=machine_id,
                sketch=sketch,
                edges_processed=builder.edges_seen,
                edges_stored=sketch.num_edges,
            )

    def _run_batched_parallel(
        self, batches: Iterable[EventBatch], partitioner: EdgePartitioner
    ) -> DistributedRunReport:
        """Route every batch, then fan the collected shards over the executor."""
        chunks: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(self.num_machines)
        ]
        for batch in batches:
            for machine, sub in enumerate(partitioner.split(batch)):
                if len(sub):
                    chunks[machine].append((sub.set_ids, sub.elements))
        jobs = []
        for machine_id, parts in enumerate(chunks):
            if parts:
                set_ids = np.concatenate([p[0] for p in parts])
                elements = np.concatenate([p[1] for p in parts])
            else:
                set_ids = np.empty(0, dtype=np.uint64)
                elements = np.empty(0, dtype=np.uint64)
            jobs.append(
                MachineShardJob(
                    machine_id=machine_id,
                    set_ids=set_ids,
                    elements=elements,
                    params=self.params,
                    hash_seed=self.seed,
                    batch_size=self.batch_size,
                    num_sets=self.params.num_sets,
                )
            )
        shard_edges = [len(job.set_ids) for job in jobs]
        return self._map_reduce(jobs, shard_edges)

    def run_from_columnar(self, source) -> DistributedRunReport:
        """Execute the rounds straight off a columnar directory (or view).

        ``source`` is a path written by
        :func:`repro.coverage.io.write_columnar` or an already-open
        :class:`repro.coverage.io.ColumnarEdges`.  The coordinator touches
        no edge data at all: with the ``row_range`` strategy each worker
        streams its own contiguous row slice of the memory-mapped columns,
        and under a parallel executor every *other* strategy ships a
        :class:`~repro.distributed.worker.ShardRecomputeJob` — path plus
        routing parameters — whose worker re-opens the directory, re-runs
        the deterministic partitioner locally and keeps only its own rows.
        Either way **zero edge bytes** are pickled to workers for every
        strategy.  Results are byte-identical to :meth:`run` on the same
        edges in file order (property-tested per strategy).

        A serial mapper routes non-``row_range`` strategies through
        :meth:`run_batched` instead — one scan of the file feeding all the
        builders beats ``num_machines`` redundant scans when there is no
        parallelism to hide them — and an in-memory-only view (no backing
        path) has nothing for a child to re-open, so it takes the same
        routed path.
        """
        from repro.coverage.io import ColumnarEdges, open_columnar

        columns = source if isinstance(source, ColumnarEdges) else open_columnar(source)
        if self.strategy != "row_range":
            if self.mapper.is_serial or columns.path is None:
                stream = EdgeStream.from_columnar(columns, order="given")
                return self.run_batched(
                    stream.iter_batches(self.batch_size), total_edges=stream.num_events
                )
            jobs: list[MapJob] = [
                ShardRecomputeJob(
                    machine_id=i,
                    path=str(columns.path),
                    strategy=self.strategy,
                    seed=self.seed,
                    num_machines=self.num_machines,
                    params=self.params,
                    hash_seed=self.seed,
                    batch_size=self.batch_size,
                )
                for i in range(self.num_machines)
            ]
            # Shard sizes are discovered by the workers themselves (each
            # job's edges_processed is its shard's row count).
            return self._map_reduce(jobs, shard_edges=None)
        bounds = row_range_bounds(columns.num_edges, self.num_machines)
        ship_paths = (
            self.mapper.backend.requires_pickling and columns.path is not None
        )
        slice_jobs: list[MapJob] = []
        for i in range(self.num_machines):
            if ship_paths:
                slice_jobs.append(
                    ColumnarSliceJob(
                        machine_id=i,
                        path=str(columns.path),
                        row_start=int(bounds[i]),
                        row_stop=int(bounds[i + 1]),
                        params=self.params,
                        hash_seed=self.seed,
                        batch_size=self.batch_size,
                    )
                )
            else:
                slice_jobs.append(
                    MachineShardJob(
                        machine_id=i,
                        set_ids=columns.set_ids[bounds[i] : bounds[i + 1]],
                        elements=columns.elements[bounds[i] : bounds[i + 1]],
                        params=self.params,
                        hash_seed=self.seed,
                        batch_size=self.batch_size,
                        num_sets=max(1, columns.num_sets),
                        num_elements_hint=columns.num_elements,
                    )
                )
        shard_edges = [int(bounds[i + 1] - bounds[i]) for i in range(self.num_machines)]
        return self._map_reduce(slice_jobs, shard_edges)

    # ------------------------------------------------------------------ #
    # round 1: map (executor fan-out)
    # ------------------------------------------------------------------ #
    def _map_reduce(
        self, jobs: Sequence[MapJob], shard_edges: list[int] | None
    ) -> DistributedRunReport:
        """Fan the map jobs over the executor and reduce in the configured mode.

        One :meth:`~repro.parallel.ParallelMapper.pool_scope` wraps the whole
        run, so the map fan-out and a streaming reduce's as-completed gather
        share a single pool instead of paying worker start-up per call.  In
        ``streaming`` mode sketches flow straight from
        :meth:`~repro.parallel.ParallelMapper.map_unordered` into the merge
        tree — the reduce overlaps the slowest mappers; in ``barrier`` mode
        the ordered gather lands first and one flat merge follows.
        """
        with self.mapper.pool_scope():
            if self.reduce == "streaming":
                arrivals = (
                    sketch
                    for _, sketch in self.mapper.map_unordered(execute_map_job, jobs)
                )
                return self._reduce(arrivals, shard_edges)
            return self._reduce(self._map_jobs(jobs), shard_edges)

    def _map_jobs(self, jobs: Sequence[MapJob]) -> list[MachineSketch]:
        """Fan the map jobs over the executor; gather in machine-id order.

        The mapper already returns results in input order; the explicit sort
        re-asserts the invariant the barrier merge's report depends on.
        After the call, ``self.mapper.last_execution`` says what actually
        ran (the sandbox fallback degrades to serial), and the report
        records that truth.
        """
        machine_sketches = self.mapper.map(execute_map_job, jobs)
        machine_sketches.sort(key=lambda ms: ms.machine_id)
        return machine_sketches

    # ------------------------------------------------------------------ #
    # round 2: reduce
    # ------------------------------------------------------------------ #
    def _reduce(
        self,
        machine_sketches: Iterable[MachineSketch],
        shard_edges: list[int] | None,
    ) -> DistributedRunReport:
        """Merge the machine sketches (barrier or streaming) and solve.

        ``machine_sketches`` may arrive in any order — the streaming tree is
        order-independent and the per-machine stats are keyed by machine id.
        ``shard_edges=None`` means the callers didn't route the shards
        themselves (shard-recompute jobs); each machine's ``edges_processed``
        is then its shard size.  ``self.mapper.last_execution`` is read
        *after* the sketches are drained, so it reflects what the map phase
        actually ran on (including the sandbox fallback).
        """
        stats: dict[int, tuple[int, int]] = {}
        if self.reduce == "streaming":
            tree = StreamingMergeTree(self.params, hash_seed=self.seed)
            for ms in machine_sketches:
                stats[ms.machine_id] = (ms.edges_processed, ms.edges_stored)
                tree.add(ms)
            merged = tree.result()
            peak_resident, merge_count = tree.peak_resident, tree.merge_count
        else:
            gathered = sorted(machine_sketches, key=lambda ms: ms.machine_id)
            stats = {
                ms.machine_id: (ms.edges_processed, ms.edges_stored)
                for ms in gathered
            }
            _RESIDENT.set(len(gathered))
            with obs.span("reduce.merge", machines=len(gathered)):
                merged = merge_machine_sketches(
                    gathered, self.params, hash_seed=self.seed
                )
            _MERGES.inc()
            _RESIDENT.set(1)
            peak_resident, merge_count = len(gathered), 1
        machine_ids = sorted(stats)
        machine_stored_edges = [stats[i][1] for i in machine_ids]
        if shard_edges is None:
            shard_edges = [stats[i][0] for i in machine_ids]
        execution = self.mapper.last_execution

        from repro.coverage.bitset import kernel_for

        with obs.span("distributed.greedy", k=self.k):
            kernel = kernel_for(merged.graph, self.coverage_backend)
            solution = greedy_k_cover(merged.graph, self.k, kernel=kernel).selected
        return DistributedRunReport(
            solution=solution,
            coverage_estimate=merged.estimate_coverage(solution),
            num_machines=self.num_machines,
            strategy=self.strategy,
            rounds=2,
            shard_edges=shard_edges,
            machine_stored_edges=machine_stored_edges,
            coordinator_edges=merged.num_edges,
            communication_edges=sum(machine_stored_edges),
            merged_threshold=merged.threshold,
            coverage_backend=kernel.backend.name if kernel is not None else None,
            executor=execution[0],
            map_workers=execution[1],
            reduce_mode=self.reduce,
            peak_resident_sketches=peak_resident,
            merge_count=merge_count,
        )
