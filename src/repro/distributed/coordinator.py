"""Coordinator: merge machine sketches and solve coverage problems on the merge.

The merge rule exploits the structure of ``H_{<=n}``:

1. Every machine used the **same** hash function, so an element's rank is
   global.  A machine's sketch contains, for every element below its local
   threshold, *all* of that element's shard edges (up to the degree cap).
2. The coordinator therefore keeps only elements whose rank is below the
   **minimum** of the machines' thresholds — for those elements the union of
   the shard edges is the element's full (capped) global edge set.
3. The union is then re-capped and re-trimmed to the global edge budget in
   rank order, exactly as the offline Algorithm 1 would, yielding a sketch of
   the *whole* input.

This is the composability property the companion paper builds its MapReduce
algorithms on; :class:`DistributedKCover` packages it into a two-round
distributed k-cover: round 1 — machines sketch their shards; round 2 — the
coordinator merges and runs the offline greedy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.coverage.bipartite import BipartiteGraph
from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import CoverageSketch
from repro.distributed.partition import partition_edges
from repro.distributed.worker import MachineSketch, build_all_machine_sketches
from repro.offline.greedy import greedy_k_cover
from repro.utils.validation import check_positive_int

__all__ = ["merge_machine_sketches", "DistributedRunReport", "DistributedKCover"]


def merge_machine_sketches(
    machine_sketches: Sequence[MachineSketch],
    params: SketchParams,
    *,
    hash_seed: int = 0,
) -> CoverageSketch:
    """Merge per-shard sketches into a sketch of the union of the shards."""
    if not machine_sketches:
        raise ValueError("need at least one machine sketch to merge")
    hash_fn = UniformHash(hash_seed)
    global_threshold = min(ms.sketch.threshold for ms in machine_sketches)

    # Union of the shard edges restricted to globally-admitted elements.
    union = BipartiteGraph(params.num_sets)
    for machine in machine_sketches:
        for set_id, element in machine.sketch.graph.edges():
            if hash_fn.value(element) <= global_threshold:
                union.add_edge(set_id, element)

    # Re-run the offline admission (rank order, degree cap, edge budget) on
    # the union — this is exactly Algorithm 1 applied to the merged content.
    order = sorted(union.elements(), key=lambda e: (hash_fn.value(e), e))
    merged = BipartiteGraph(params.num_sets)
    hashes: dict[int, float] = {}
    truncated: set[int] = set()
    threshold = global_threshold
    for element in order:
        if merged.num_edges >= params.edge_budget:
            threshold = min(threshold, hash_fn.value(element))
            break
        owners = sorted(union.sets_of(element))
        if len(owners) > params.degree_cap:
            truncated.add(element)
            owners = owners[: params.degree_cap]
        for set_id in owners:
            merged.add_edge(set_id, element)
        hashes[element] = hash_fn.value(element)
    return CoverageSketch(
        graph=merged,
        params=params,
        threshold=threshold,
        element_hashes=hashes,
        truncated_elements=frozenset(truncated),
    )


@dataclass
class DistributedRunReport:
    """Everything measured about one distributed run."""

    solution: list[int]
    coverage_estimate: float
    num_machines: int
    strategy: str
    rounds: int
    shard_edges: list[int] = field(default_factory=list)
    machine_stored_edges: list[int] = field(default_factory=list)
    coordinator_edges: int = 0
    communication_edges: int = 0

    @property
    def max_machine_load(self) -> int:
        """Largest number of edges any machine had to store."""
        return max(self.machine_stored_edges, default=0)

    def as_dict(self) -> dict[str, object]:
        """Flatten for experiment tables."""
        return {
            "num_machines": self.num_machines,
            "strategy": self.strategy,
            "rounds": self.rounds,
            "solution_size": len(self.solution),
            "coverage_estimate": self.coverage_estimate,
            "max_machine_load": self.max_machine_load,
            "coordinator_edges": self.coordinator_edges,
            "communication_edges": self.communication_edges,
        }


class DistributedKCover:
    """Two-round distributed (MapReduce-style) k-cover via composable sketches.

    Parameters
    ----------
    num_sets, num_elements:
        Instance dimensions (known to every machine, as in the paper).
    k, epsilon:
        Problem and accuracy parameters.
    num_machines:
        Number of simulated machines.
    strategy:
        Edge partitioning strategy (see :mod:`repro.distributed.partition`).
    params:
        Explicit sketch budgets (defaults to Algorithm 3's choice).
    """

    def __init__(
        self,
        num_sets: int,
        num_elements: int,
        k: int,
        epsilon: float = 0.2,
        *,
        num_machines: int = 4,
        strategy: str = "random",
        params: SketchParams | None = None,
        mode: str = "scaled",
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        from repro.core.kcover import default_kcover_params

        check_positive_int(num_machines, "num_machines")
        check_positive_int(k, "k")
        self.num_sets = num_sets
        self.num_elements = num_elements
        self.k = k
        self.epsilon = epsilon
        self.num_machines = num_machines
        self.strategy = strategy
        self.seed = seed
        self.params = params or default_kcover_params(
            num_sets, num_elements, k, epsilon, mode=mode, scale=scale
        )

    def run(self, edges: Sequence[tuple[int, int]]) -> DistributedRunReport:
        """Execute the two distributed rounds on the given edge set."""
        shards = partition_edges(
            edges, self.num_machines, strategy=self.strategy, seed=self.seed
        )
        machine_sketches = build_all_machine_sketches(
            shards, self.params, hash_seed=self.seed
        )
        merged = merge_machine_sketches(machine_sketches, self.params, hash_seed=self.seed)
        solution = greedy_k_cover(merged.graph, self.k).selected
        return DistributedRunReport(
            solution=solution,
            coverage_estimate=merged.estimate_coverage(solution),
            num_machines=self.num_machines,
            strategy=self.strategy,
            rounds=2,
            shard_edges=[len(shard) for shard in shards],
            machine_stored_edges=[ms.edges_stored for ms in machine_sketches],
            coordinator_edges=merged.num_edges,
            communication_edges=sum(ms.edges_stored for ms in machine_sketches),
        )
