"""Per-machine sketch workers.

Each simulated machine owns one shard of the edge set and builds the paper's
``H_{<=n}`` sketch of that shard using a hash function **shared with every
other machine** (same seed).  Sharing the hash is what makes the per-machine
sketches composable: an element's rank is a global property, so the
coordinator can merge shard sketches by taking unions and re-applying the
global threshold/budget.

A shard can be fed to a worker in any of three shapes:

* a plain sequence of ``(set_id, element)`` tuples (the historical path);
* an :class:`~repro.streaming.batches.EventBatch` or an iterable of batches —
  each batch goes through the sketch builder's native vectorised
  ``process_batch`` (byte-identical to the scalar feed, much faster);
* an :class:`~repro.streaming.stream.EdgeStream` — one pass is consumed as
  columnar batches, so a memory-mapped columnar slice flows from disk pages
  into the sketch with no per-edge Python objects anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import CoverageSketch
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.streaming.batches import EventBatch
from repro.streaming.events import EdgeArrival
from repro.streaming.stream import EdgeStream

__all__ = [
    "DEFAULT_MAP_BATCH",
    "MachineSketch",
    "build_machine_sketch",
    "build_all_machine_sketches",
]

#: Batch size used when a worker drains an :class:`EdgeStream` shard.  Large
#: enough to amortise the per-batch numpy overhead, small enough that one
#: batch of two uint64 columns stays cache-friendly.
DEFAULT_MAP_BATCH = 65_536

#: A worker input: tuples, scalar events, batches, a batch iterable, or a
#: replayable stream of a columnar slice.
Shard = (
    Sequence[tuple[int, int]]
    | Iterable[tuple[int, int] | EdgeArrival | EventBatch]
    | EventBatch
    | EdgeStream
)


@dataclass
class MachineSketch:
    """The outcome of one machine's local pass over its shard."""

    machine_id: int
    sketch: CoverageSketch
    edges_processed: int
    edges_stored: int

    @property
    def compression(self) -> float:
        """Stored / processed edges (1.0 when the shard fit in the budget)."""
        if self.edges_processed == 0:
            return 1.0
        return self.edges_stored / self.edges_processed


def _feed(builder: StreamingSketchBuilder, shard: Shard, batch_size: int) -> None:
    """Drain a shard of any supported shape through the builder."""
    if isinstance(shard, EdgeStream):
        for batch in shard.iter_batches(batch_size):
            builder.process_batch(batch)
        return
    if isinstance(shard, EventBatch):
        builder.process_batch(shard)
        return
    for item in shard:
        if isinstance(item, EventBatch):
            builder.process_batch(item)
        elif isinstance(item, EdgeArrival):
            builder.add_edge(item.set_id, item.element)
        else:
            set_id, element = item
            builder.add_edge(set_id, element)


def build_machine_sketch(
    machine_id: int,
    shard: Shard,
    params: SketchParams,
    *,
    hash_seed: int = 0,
    batch_size: int = DEFAULT_MAP_BATCH,
) -> MachineSketch:
    """Build one machine's sketch of its shard (single local pass).

    ``shard`` may be an edge-tuple sequence, an
    :class:`~repro.streaming.batches.EventBatch` (or iterable of batches), or
    an :class:`~repro.streaming.stream.EdgeStream`; batch-shaped inputs run
    through the builder's native vectorised path and produce byte-identical
    sketches to the scalar feed.
    """
    builder = StreamingSketchBuilder(params, hash_fn=UniformHash(hash_seed))
    _feed(builder, shard, batch_size)
    sketch = builder.sketch()
    return MachineSketch(
        machine_id=machine_id,
        sketch=sketch,
        edges_processed=builder.edges_seen,
        edges_stored=sketch.num_edges,
    )


def build_all_machine_sketches(
    shards: Iterable[Shard],
    params: SketchParams,
    *,
    hash_seed: int = 0,
    batch_size: int = DEFAULT_MAP_BATCH,
) -> list[MachineSketch]:
    """Build every machine's sketch (sequentially — the shards are independent)."""
    return [
        build_machine_sketch(
            machine_id, shard, params, hash_seed=hash_seed, batch_size=batch_size
        )
        for machine_id, shard in enumerate(shards)
    ]
