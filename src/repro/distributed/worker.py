"""Per-machine sketch workers.

Each simulated machine owns one shard of the edge set and builds the paper's
``H_{<=n}`` sketch of that shard using a hash function **shared with every
other machine** (same seed).  Sharing the hash is what makes the per-machine
sketches composable: an element's rank is a global property, so the
coordinator can merge shard sketches by taking unions and re-applying the
global threshold/budget.

A shard can be fed to a worker in any of three shapes:

* a plain sequence of ``(set_id, element)`` tuples (the historical path);
* an :class:`~repro.streaming.batches.EventBatch` or an iterable of batches —
  each batch goes through the sketch builder's native vectorised
  ``process_batch`` (byte-identical to the scalar feed, much faster);
* an :class:`~repro.streaming.stream.EdgeStream` — one pass is consumed as
  columnar batches, so a memory-mapped columnar slice flows from disk pages
  into the sketch with no per-edge Python objects anywhere.

Job protocol
------------
For the :mod:`repro.parallel` executor runtime the map phase is additionally
expressed as picklable *jobs*: small frozen dataclasses describing one
machine's work, executed by the top-level :func:`execute_map_job` (top-level
so :class:`~concurrent.futures.ProcessPoolExecutor` can pickle it by
reference).  A :class:`ColumnarSliceJob` carries only a columnar directory
path, the machine's row bounds and the sketch parameters — the child process
re-opens (memory-maps) the directory itself and maps its own slice, so **no
edge data ever crosses the process boundary**.  A :class:`ShardRecomputeJob`
extends the same zero-ship idea to every *non-contiguous* partition
strategy: shard assignment is deterministic (see
:mod:`repro.distributed.partition`), so the job carries only ``(path,
strategy, seed, machine_id, params)`` — the child re-opens the columnar
directory, re-runs the partitioner's routing locally, keeps its own
machine's rows and sketches them.  A :class:`MachineShardJob` carries the
shard's edge columns directly, for shards that only exist in memory
(thread/serial backends read them zero-copy; the process backend pickles
them, which is correct but pays the transfer).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro import obs
from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import CoverageSketch
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.streaming.batches import EventBatch
from repro.streaming.events import EdgeArrival
from repro.streaming.stream import EdgeStream

__all__ = [
    "DEFAULT_MAP_BATCH",
    "MachineSketch",
    "MachineShardJob",
    "ColumnarSliceJob",
    "ShardRecomputeJob",
    "execute_map_job",
    "build_machine_sketch",
    "build_all_machine_sketches",
]

#: Batch size used when a worker drains an :class:`EdgeStream` shard.  Large
#: enough to amortise the per-batch numpy overhead, small enough that one
#: batch of two uint64 columns stays cache-friendly.
DEFAULT_MAP_BATCH = 65_536

#: A worker input: tuples, scalar events, batches, a batch iterable, or a
#: replayable stream of a columnar slice.
Shard = (
    Sequence[tuple[int, int]]
    | Iterable[tuple[int, int] | EdgeArrival | EventBatch]
    | EventBatch
    | EdgeStream
)


@dataclass
class MachineSketch:
    """The outcome of one machine's local pass over its shard."""

    machine_id: int
    sketch: CoverageSketch
    edges_processed: int
    edges_stored: int

    @property
    def compression(self) -> float:
        """Stored / processed edges (1.0 when the shard fit in the budget)."""
        if self.edges_processed == 0:
            return 1.0
        return self.edges_stored / self.edges_processed


def _feed(builder: StreamingSketchBuilder, shard: Shard, batch_size: int) -> None:
    """Drain a shard of any supported shape through the builder."""
    if isinstance(shard, EdgeStream):
        for batch in shard.iter_batches(batch_size):
            builder.process_batch(batch)
        return
    if isinstance(shard, EventBatch):
        builder.process_batch(shard)
        return
    for item in shard:
        if isinstance(item, EventBatch):
            builder.process_batch(item)
        elif isinstance(item, EdgeArrival):
            builder.add_edge(item.set_id, item.element)
        else:
            set_id, element = item
            builder.add_edge(set_id, element)


def build_machine_sketch(
    machine_id: int,
    shard: Shard,
    params: SketchParams,
    *,
    hash_seed: int = 0,
    batch_size: int = DEFAULT_MAP_BATCH,
) -> MachineSketch:
    """Build one machine's sketch of its shard (single local pass).

    ``shard`` may be an edge-tuple sequence, an
    :class:`~repro.streaming.batches.EventBatch` (or iterable of batches), or
    an :class:`~repro.streaming.stream.EdgeStream`; batch-shaped inputs run
    through the builder's native vectorised path and produce byte-identical
    sketches to the scalar feed.
    """
    builder = StreamingSketchBuilder(params, hash_fn=UniformHash(hash_seed))
    _feed(builder, shard, batch_size)
    sketch = builder.sketch()
    return MachineSketch(
        machine_id=machine_id,
        sketch=sketch,
        edges_processed=builder.edges_seen,
        edges_stored=sketch.num_edges,
    )


def build_all_machine_sketches(
    shards: Iterable[Shard],
    params: SketchParams,
    *,
    hash_seed: int = 0,
    batch_size: int = DEFAULT_MAP_BATCH,
) -> list[MachineSketch]:
    """Build every machine's sketch (sequentially — the shards are independent).

    For multi-core execution, express the shards as jobs and fan them out
    with a :class:`repro.parallel.ParallelMapper` over
    :func:`execute_map_job` instead.
    """
    return [
        build_machine_sketch(
            machine_id, shard, params, hash_seed=hash_seed, batch_size=batch_size
        )
        for machine_id, shard in enumerate(shards)
    ]


# --------------------------------------------------------------------- #
# picklable map jobs (the repro.parallel executor protocol)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class MachineShardJob:
    """One machine's shard, carried as in-memory edge columns.

    ``set_ids`` / ``elements`` are the shard's parallel ``uint64`` columns in
    arrival order.  Serial and thread backends read them zero-copy; the
    process backend pickles them (prefer :class:`ColumnarSliceJob` when the
    shard lives in a columnar directory).
    """

    machine_id: int
    set_ids: np.ndarray
    elements: np.ndarray
    params: SketchParams
    hash_seed: int = 0
    batch_size: int = DEFAULT_MAP_BATCH
    num_sets: int = 1
    num_elements_hint: int | None = None

    def run(self) -> MachineSketch:
        """Map this shard into its machine sketch."""
        stream = EdgeStream(
            columns=(self.set_ids, self.elements),
            num_sets=max(1, self.num_sets),
            num_elements_hint=self.num_elements_hint,
            order="given",
        )
        return build_machine_sketch(
            self.machine_id,
            stream,
            self.params,
            hash_seed=self.hash_seed,
            batch_size=self.batch_size,
        )


@dataclass(frozen=True)
class ColumnarSliceJob:
    """One machine's contiguous row slice of an on-disk columnar directory.

    Only the path, the row bounds and the sketch parameters are pickled; the
    executing process re-opens (memory-maps) the directory itself and maps
    its own slice, so a process-backend map phase ships **zero edge data**.
    """

    machine_id: int
    path: str
    row_start: int
    row_stop: int
    params: SketchParams
    hash_seed: int = 0
    batch_size: int = DEFAULT_MAP_BATCH

    def run(self) -> MachineSketch:
        """Re-open the columnar directory and map this job's row slice."""
        from repro.coverage.io import open_columnar

        columns = open_columnar(Path(self.path))
        if not 0 <= self.row_start <= self.row_stop <= columns.num_edges:
            raise ValueError(
                f"row slice [{self.row_start}, {self.row_stop}) is out of bounds "
                f"for {columns.num_edges} edges in {self.path}"
            )
        stream = EdgeStream(
            columns=(
                columns.set_ids[self.row_start : self.row_stop],
                columns.elements[self.row_start : self.row_stop],
            ),
            num_sets=max(1, columns.num_sets),
            num_elements_hint=columns.num_elements,
            order="given",
        )
        return build_machine_sketch(
            self.machine_id,
            stream,
            self.params,
            hash_seed=self.hash_seed,
            batch_size=self.batch_size,
        )


@dataclass(frozen=True)
class ShardRecomputeJob:
    """One machine's shard of a columnar directory, described by its routing.

    No edge data (and no row bounds) is carried at all: shard assignment is a
    pure function of ``(strategy, seed, num_machines)`` over the columns in
    file order — batch-boundary-invariant by contract
    (:class:`~repro.distributed.partition.EdgePartitioner`, property-tested)
    — so the executing worker re-opens (memory-maps) the directory, re-runs
    the routing locally and keeps only the rows assigned to
    ``machine_id``.  Every partition strategy therefore ships **zero edge
    bytes**, not just ``row_range``; the redundant routing work is the
    classic recompute-over-communicate trade and is itself vectorised.
    The resulting sketch is byte-identical to the shipped-columns path
    (property-tested per strategy).
    """

    machine_id: int
    path: str
    strategy: str
    seed: int
    num_machines: int
    params: SketchParams
    hash_seed: int = 0
    batch_size: int = DEFAULT_MAP_BATCH

    def run(self) -> MachineSketch:
        """Re-open the columnar directory, route it, sketch this machine's rows."""
        from repro.coverage.io import open_columnar
        from repro.distributed.partition import EdgePartitioner

        columns = open_columnar(Path(self.path))
        partitioner = EdgePartitioner(
            self.num_machines,
            strategy=self.strategy,
            seed=self.seed,
            total_edges=columns.num_edges,
        )
        builder = StreamingSketchBuilder(
            self.params, hash_fn=UniformHash(self.hash_seed)
        )
        stream = EdgeStream.from_columnar(columns, order="given")
        for batch in stream.iter_batches(self.batch_size):
            assigned = partitioner.assign(batch.set_ids, batch.elements)
            rows = np.flatnonzero(assigned == self.machine_id)
            if len(rows):
                builder.process_batch(batch.take(rows))
        sketch = builder.sketch()
        return MachineSketch(
            machine_id=self.machine_id,
            sketch=sketch,
            edges_processed=builder.edges_seen,
            edges_stored=sketch.num_edges,
        )


#: Any picklable description of one machine's map work.
MapJob = MachineShardJob | ColumnarSliceJob | ShardRecomputeJob


def execute_map_job(job: MapJob) -> MachineSketch:
    """Run one map job (top-level, so process pools can pickle it by name).

    The span is a no-op unless the job runs under a tracer — either the
    coordinator's (serial/thread executors) or the per-job capture the
    instrumented :class:`~repro.parallel.ParallelMapper` installs, whose
    records ride back with the result and stitch into one coherent trace.
    """
    with obs.span("map.machine", machine=job.machine_id):
        return job.run()
