"""Per-machine sketch workers.

Each simulated machine owns one shard of the edge set and builds the paper's
``H_{<=n}`` sketch of that shard using a hash function **shared with every
other machine** (same seed).  Sharing the hash is what makes the per-machine
sketches composable: an element's rank is a global property, so the
coordinator can merge shard sketches by taking unions and re-applying the
global threshold/budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import CoverageSketch
from repro.core.streaming_sketch import StreamingSketchBuilder

__all__ = ["MachineSketch", "build_machine_sketch", "build_all_machine_sketches"]


@dataclass
class MachineSketch:
    """The outcome of one machine's local pass over its shard."""

    machine_id: int
    sketch: CoverageSketch
    edges_processed: int
    edges_stored: int

    @property
    def compression(self) -> float:
        """Stored / processed edges (1.0 when the shard fit in the budget)."""
        if self.edges_processed == 0:
            return 1.0
        return self.edges_stored / self.edges_processed


def build_machine_sketch(
    machine_id: int,
    shard: Sequence[tuple[int, int]],
    params: SketchParams,
    *,
    hash_seed: int = 0,
) -> MachineSketch:
    """Build one machine's sketch of its shard (single local pass)."""
    builder = StreamingSketchBuilder(params, hash_fn=UniformHash(hash_seed))
    builder.consume(shard)
    sketch = builder.sketch()
    return MachineSketch(
        machine_id=machine_id,
        sketch=sketch,
        edges_processed=len(shard),
        edges_stored=sketch.num_edges,
    )


def build_all_machine_sketches(
    shards: Iterable[Sequence[tuple[int, int]]],
    params: SketchParams,
    *,
    hash_seed: int = 0,
) -> list[MachineSketch]:
    """Build every machine's sketch (sequentially — the shards are independent)."""
    return [
        build_machine_sketch(machine_id, shard, params, hash_seed=hash_seed)
        for machine_id, shard in enumerate(shards)
    ]
