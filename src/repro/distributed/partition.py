"""Edge partitioning across simulated machines.

The paper's conclusion and §1.3.2 point to a companion work applying the same
sketch to distributed (MapReduce-style) computation; the key enabler is that
the sketch is **composable**: machines build sketches of their shards with a
*shared* hash function, and the coordinator's merge of those sketches is a
sketch of the whole input.  This module provides the sharding strategies the
simulation uses:

* ``"random"`` — each edge goes to a uniformly random machine (the standard
  MapReduce shuffle model);
* ``"by_set"`` — all edges of one set go to the same machine (the set-arrival
  / partitioned-family model used by core-set approaches);
* ``"by_element"`` — all edges of one element go to the same machine;
* ``"round_robin"`` — deterministic balanced assignment (for tests);
* ``"row_range"`` — machine ``i`` owns the ``i``-th contiguous run of the
  input (the natural sharding of a columnar file: each worker memory-maps
  its own row slice and never sees the rest).

Assignment is computed **vectorised**: :class:`EdgePartitioner` consumes
:class:`~repro.streaming.batches.EventBatch` columns and decides a whole
batch with one ``rng.integers`` / :func:`~repro.utils.rng.mix64_array` call.
The scalar :func:`partition_edges` entry point routes through the same
kernel, so batch-at-a-time and edge-list-at-once sharding are identical by
construction (``Generator.integers(size=k)`` consumes the bit stream exactly
like ``k`` sequential scalar draws, which the property tests pin down).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.streaming.batches import EventBatch
from repro.utils.rng import mix64_array, spawn_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "PARTITION_STRATEGIES",
    "EdgePartitioner",
    "partition_edges",
    "row_range_bounds",
    "shard_sizes",
]

PARTITION_STRATEGIES = ("random", "by_set", "by_element", "round_robin", "row_range")


def row_range_bounds(num_edges: int, num_machines: int) -> np.ndarray:
    """Shard boundaries for ``"row_range"``: machine ``i`` owns rows
    ``bounds[i]:bounds[i+1]`` (balanced contiguous runs, earlier machines get
    the remainder — the same convention as ``np.array_split``)."""
    check_positive_int(num_machines, "num_machines")
    if num_edges < 0:
        raise ValueError(f"num_edges must be >= 0, got {num_edges}")
    base, remainder = divmod(num_edges, num_machines)
    sizes = np.full(num_machines, base, dtype=np.int64)
    sizes[:remainder] += 1
    bounds = np.zeros(num_machines + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


class EdgePartitioner:
    """Stateful vectorised shard assignment over a stream of edge batches.

    One instance assigns every edge of one logical pass: the ``random``
    strategy keeps a persistent generator (batch boundaries do not change the
    draw sequence) and ``round_robin`` / ``row_range`` track the global row
    position, so feeding the same edges in any batching yields the same
    machine per edge as :func:`partition_edges` on the flat list.

    Parameters
    ----------
    num_machines:
        Number of shards.
    strategy:
        One of :data:`PARTITION_STRATEGIES`.
    seed:
        Seed for ``random`` (the shuffle RNG) and the hash-based strategies.
    total_edges:
        Length of the pass; required by ``row_range`` (the boundaries depend
        on it), ignored by every other strategy.
    """

    def __init__(
        self,
        num_machines: int,
        *,
        strategy: str = "random",
        seed: int = 0,
        total_edges: int | None = None,
    ) -> None:
        check_positive_int(num_machines, "num_machines")
        if strategy not in PARTITION_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {PARTITION_STRATEGIES}"
            )
        self.num_machines = num_machines
        self.strategy = strategy
        self.seed = seed
        self._position = 0
        self._rng = spawn_rng(seed, "edge-partition") if strategy == "random" else None
        self._bounds: np.ndarray | None = None
        if strategy == "row_range":
            if total_edges is None:
                raise ValueError(
                    "row_range sharding needs total_edges (the boundaries depend "
                    "on the pass length)"
                )
            self._bounds = row_range_bounds(int(total_edges), num_machines)

    def assign(self, set_ids: np.ndarray, elements: np.ndarray) -> np.ndarray:
        """Machine id per edge for the next chunk of the pass (one array op)."""
        count = len(set_ids)
        if self.strategy == "random":
            machines = self._rng.integers(self.num_machines, size=count)
        elif self.strategy == "by_set":
            machines = mix64_array(set_ids, seed=self.seed) % np.uint64(self.num_machines)
        elif self.strategy == "by_element":
            machines = mix64_array(elements, seed=self.seed) % np.uint64(self.num_machines)
        elif self.strategy == "round_robin":
            machines = (self._position + np.arange(count, dtype=np.int64)) % self.num_machines
        else:  # row_range
            rows = self._position + np.arange(count, dtype=np.int64)
            if count and rows[-1] >= self._bounds[-1]:
                raise ValueError(
                    f"row_range partitioner configured for {int(self._bounds[-1])} "
                    f"edges saw row {int(rows[-1])}"
                )
            machines = np.searchsorted(self._bounds, rows, side="right") - 1
        self._position += count
        return machines.astype(np.int64, copy=False)

    def split(self, batch: EventBatch) -> list[EventBatch]:
        """Route one edge batch: the per-machine sub-batches, in machine order.

        Preserves the within-shard arrival order (a stable grouping of the
        batch rows), so shard ``i``'s concatenated sub-batches replay exactly
        the edges :func:`partition_edges` would put in shard ``i``.
        """
        if batch.offsets is not None:
            raise TypeError("EdgePartitioner shards edge batches, got a set batch")
        machines = self.assign(batch.set_ids, batch.elements)
        return [
            batch.take(np.flatnonzero(machines == machine))
            for machine in range(self.num_machines)
        ]


def partition_edges(
    edges: Iterable[tuple[int, int]],
    num_machines: int,
    *,
    strategy: str = "random",
    seed: int = 0,
) -> list[list[tuple[int, int]]]:
    """Split an edge list into ``num_machines`` shards.

    Returns a list of shards (lists of ``(set_id, element)`` pairs); every
    input edge appears in exactly one shard.  Assignment is one vectorised
    :meth:`EdgePartitioner.assign` call over the whole list.
    """
    batch = edges if isinstance(edges, EventBatch) else EventBatch.from_edges(edges)
    partitioner = EdgePartitioner(
        num_machines, strategy=strategy, seed=seed, total_edges=len(batch)
    )
    machines = partitioner.assign(batch.set_ids, batch.elements)
    shards: list[list[tuple[int, int]]] = []
    for machine in range(num_machines):
        rows = np.flatnonzero(machines == machine)
        shards.append(
            list(zip(batch.set_ids[rows].tolist(), batch.elements[rows].tolist()))
        )
    return shards


def shard_sizes(shards: Sequence[Sequence[tuple[int, int]]]) -> list[int]:
    """Convenience: the number of edges per shard."""
    return [len(shard) for shard in shards]
