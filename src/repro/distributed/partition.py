"""Edge partitioning across simulated machines.

The paper's conclusion and §1.3.2 point to a companion work applying the same
sketch to distributed (MapReduce-style) computation; the key enabler is that
the sketch is **composable**: machines build sketches of their shards with a
*shared* hash function, and the coordinator's merge of those sketches is a
sketch of the whole input.  This module provides the sharding strategies the
simulation uses:

* ``"random"`` — each edge goes to a uniformly random machine (the standard
  MapReduce shuffle model);
* ``"by_set"`` — all edges of one set go to the same machine (the set-arrival
  / partitioned-family model used by core-set approaches);
* ``"by_element"`` — all edges of one element go to the same machine;
* ``"round_robin"`` — deterministic balanced assignment (for tests).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.utils.rng import mix64, spawn_rng
from repro.utils.validation import check_positive_int

__all__ = ["PARTITION_STRATEGIES", "partition_edges", "shard_sizes"]

PARTITION_STRATEGIES = ("random", "by_set", "by_element", "round_robin")


def partition_edges(
    edges: Iterable[tuple[int, int]],
    num_machines: int,
    *,
    strategy: str = "random",
    seed: int = 0,
) -> list[list[tuple[int, int]]]:
    """Split an edge list into ``num_machines`` shards.

    Returns a list of shards (lists of ``(set_id, element)`` pairs); every
    input edge appears in exactly one shard.
    """
    check_positive_int(num_machines, "num_machines")
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {PARTITION_STRATEGIES}"
        )
    shards: list[list[tuple[int, int]]] = [[] for _ in range(num_machines)]
    if strategy == "random":
        rng = spawn_rng(seed, "edge-partition")
        for edge in edges:
            shards[int(rng.integers(num_machines))].append((int(edge[0]), int(edge[1])))
    elif strategy == "by_set":
        for edge in edges:
            shards[mix64(int(edge[0]), seed=seed) % num_machines].append(
                (int(edge[0]), int(edge[1]))
            )
    elif strategy == "by_element":
        for edge in edges:
            shards[mix64(int(edge[1]), seed=seed) % num_machines].append(
                (int(edge[0]), int(edge[1]))
            )
    else:  # round_robin
        for index, edge in enumerate(edges):
            shards[index % num_machines].append((int(edge[0]), int(edge[1])))
    return shards


def shard_sizes(shards: Sequence[Sequence[tuple[int, int]]]) -> list[int]:
    """Convenience: the number of edges per shard."""
    return [len(shard) for shard in shards]
