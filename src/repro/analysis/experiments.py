"""Experiment runner: drives algorithm/instance grids and collects rows.

Every benchmark in ``benchmarks/`` and every example script builds its table
through this module so the output format is uniform: one
:class:`ExperimentRow` per (algorithm, instance, repetition), convertible to
:class:`repro.utils.tables.Table` for printing and to plain dicts for
persistence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.analysis.metrics import approximation_ratio, kcover_reference_value, summarize
from repro.coverage.instance import CoverageInstance
from repro.streaming.runner import StreamingReport, StreamingRunner
from repro.streaming.stream import EdgeStream, SetStream
from repro.utils.tables import Table

__all__ = [
    "ExperimentRow",
    "ExperimentSuite",
    "run_streaming_comparison",
    "run_solver_comparison",
]


@dataclass
class ExperimentRow:
    """One measured row: algorithm x instance x repetition."""

    experiment: str
    algorithm: str
    instance: str
    metrics: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Flatten into a single dict for tables."""
        return {
            "experiment": self.experiment,
            "algorithm": self.algorithm,
            "instance": self.instance,
            **self.metrics,
        }


class ExperimentSuite:
    """Accumulates rows and renders them as tables / aggregates."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.rows: list[ExperimentRow] = []

    def add(self, row: ExperimentRow) -> None:
        """Add a single row."""
        self.rows.append(row)

    def add_report(
        self,
        algorithm: str,
        instance_name: str,
        report: StreamingReport,
        *,
        extra: dict[str, Any] | None = None,
    ) -> ExperimentRow:
        """Add a row derived from a :class:`StreamingReport`."""
        metrics = report.as_dict()
        metrics.pop("algorithm", None)
        if extra:
            metrics.update(extra)
        row = ExperimentRow(
            experiment=self.name, algorithm=algorithm, instance=instance_name, metrics=metrics
        )
        self.add(row)
        return row

    def algorithms(self) -> list[str]:
        """Distinct algorithm names, in first-seen order."""
        return list(dict.fromkeys(row.algorithm for row in self.rows))

    def filter(self, **conditions: Any) -> list[ExperimentRow]:
        """Rows whose metrics (or fields) match all the given values."""
        out = []
        for row in self.rows:
            flat = row.as_dict()
            if all(flat.get(key) == value for key, value in conditions.items()):
                out.append(row)
        return out

    def aggregate(self, metric: str, by: str = "algorithm") -> dict[str, dict[str, float]]:
        """Summary statistics of one metric grouped by a field."""
        groups: dict[str, list[float]] = {}
        for row in self.rows:
            flat = row.as_dict()
            if metric not in flat or flat[metric] is None:
                continue
            groups.setdefault(str(flat.get(by)), []).append(float(flat[metric]))
        return {key: summarize(values).as_dict() for key, values in groups.items() if values}

    def to_table(self, columns: Sequence[str] | None = None) -> Table:
        """Render all rows as a :class:`Table` (columns inferred if omitted)."""
        if columns is None:
            seen: dict[str, None] = {}
            for row in self.rows:
                for key in row.as_dict():
                    seen.setdefault(key, None)
            columns = list(seen)
        table = Table(list(columns))
        for row in self.rows:
            flat = row.as_dict()
            table.add_row(**{c: flat.get(c, "") for c in columns})
        return table

    def __len__(self) -> int:
        return len(self.rows)


def run_solver_comparison(
    suite: ExperimentSuite,
    instance: CoverageInstance,
    instance_name: str,
    solvers: Iterable[Any],
    *,
    seed: int = 0,
    reference_value: float | None = None,
) -> list[ExperimentRow]:
    """Run registry solvers on one instance and record their rows.

    The registry-based counterpart of :func:`run_streaming_comparison`:
    instead of ``(label, factory)`` pairs it takes :mod:`repro.api` solver
    names / specs — plain names, ``(label, name)`` or
    ``(label, name, options)`` — and resolves the wiring (constructor
    arguments, stream arrival model, report metrics) through the facade.
    """
    from repro.api import Session  # local import: analysis must not require api at import time

    session = Session(
        instance,
        instance_name=instance_name,
        seed=seed,
        reference_value=reference_value,
        suite=suite,
    )
    start = len(suite.rows)
    session.compare(solvers)
    return suite.rows[start:]


def run_streaming_comparison(
    suite: ExperimentSuite,
    instance: CoverageInstance,
    instance_name: str,
    algorithms: Iterable[tuple[str, Callable[[], Any]]],
    *,
    edge_order: str = "random",
    set_order: str = "random",
    seed: int = 0,
    reference_value: float | None = None,
    kernel: Any | None = None,
) -> list[ExperimentRow]:
    """Run several streaming algorithms on one instance and record their rows.

    Parameters
    ----------
    suite:
        The suite rows are appended to.
    instance:
        The coverage instance; streams are generated from its graph.
    instance_name:
        Label used in the rows.
    algorithms:
        Pairs ``(label, factory)`` where the factory builds a *fresh*
        algorithm object (implementing the StreamingAlgorithm protocol).
    edge_order / set_order:
        Stream orders for edge-arrival and set-arrival consumers.
    reference_value:
        Reference ``Opt_k`` (defaults to the planted/greedy reference).
    kernel:
        Optional :class:`repro.coverage.bitset.BitsetCoverage` snapshot of
        the instance graph; the greedy reference then runs on its vectorised
        lazy path — the same kernel the offline solvers use.
    """
    runner = StreamingRunner(instance.graph)
    reference = (
        reference_value
        if reference_value is not None
        else kcover_reference_value(instance, kernel=kernel)
    )
    rows = []
    for label, factory in algorithms:
        algorithm = factory()
        if algorithm.arrival_model == "edge":
            stream = EdgeStream.from_graph(instance.graph, order=edge_order, seed=seed)
        else:
            stream = SetStream.from_graph(instance.graph, order=set_order, seed=seed)
        report = runner.run(algorithm, stream)
        extra = {
            "reference_value": reference,
            "approx_ratio": approximation_ratio(report.coverage, reference),
            "n": instance.n,
            "m": instance.m,
            "input_edges": instance.num_edges,
        }
        rows.append(suite.add_report(label, instance_name, report, extra=extra))
    return rows
