"""Terminal-friendly plots (sparklines and horizontal bars).

The benchmark tables show exact numbers; for sweeps (space vs. m, accuracy
vs. ε, accuracy vs. memory) a one-line visual makes the *shape* — which is
what the reproduction is judged on — immediately apparent without any
plotting dependency.  Used by the examples and available to report scripts.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["sparkline", "bar_chart", "labeled_sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence of numbers as a unicode sparkline.

    >>> sparkline([1, 2, 3, 4])
    '▁▃▆█'
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    low, high = min(values), max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    out = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1) + 0.5)
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


def labeled_sparkline(label: str, values: Sequence[float], *, width: int = 24) -> str:
    """A left-aligned label followed by the sparkline and the value range."""
    values = [float(v) for v in values]
    if not values:
        return f"{label.ljust(width)} (no data)"
    return (
        f"{label.ljust(width)} {sparkline(values)}  "
        f"[{min(values):.4g} .. {max(values):.4g}]"
    )


def bar_chart(
    items: Sequence[tuple[str, float]],
    *,
    width: int = 40,
    fill: str = "█",
) -> str:
    """Horizontal bar chart of (label, value) pairs, scaled to ``width`` chars.

    Values must be non-negative; labels are right-padded to align the bars.
    """
    if not items:
        return ""
    if any(value < 0 for _, value in items):
        raise ValueError("bar_chart requires non-negative values")
    longest_label = max(len(label) for label, _ in items)
    peak = max(value for _, value in items) or 1.0
    lines = []
    for label, value in items:
        bar = fill * max(0, int(round(width * value / peak)))
        lines.append(f"{label.ljust(longest_label)}  {bar} {value:.4g}")
    return "\n".join(lines)
