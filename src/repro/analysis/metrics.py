"""Metrics used to compare algorithms against references.

The paper's claims are about three axes — approximation quality, space and
passes — so every experiment reports all three.  This module computes the
quality side: approximation ratios against planted optima, greedy, or exact
solutions, plus summary statistics across repetitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.instance import CoverageInstance
from repro.offline.greedy import greedy_k_cover

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.coverage.bitset import BitsetCoverage

__all__ = [
    "approximation_ratio",
    "kcover_reference_value",
    "setcover_blowup",
    "coverage_shortfall",
    "SummaryStats",
    "summarize",
]


def kcover_reference_value(
    instance: CoverageInstance,
    *,
    use_planted: bool = True,
    kernel: "BitsetCoverage | None" = None,
) -> int:
    """The best available reference value for ``Opt_k``.

    The planted value is used when the generator provided one (it is exact or
    a lower bound on the optimum); otherwise the offline greedy value is used
    (a ``1 − 1/e`` lower bound on the optimum, the customary yardstick).
    ``kernel`` optionally runs that greedy on a packed-bitset snapshot of the
    instance graph — the fast path for large reference sweeps.
    """
    if use_planted and instance.planted_value is not None:
        return int(instance.planted_value)
    return greedy_k_cover(instance.graph, instance.k, kernel=kernel).coverage


def approximation_ratio(achieved: float, reference: float) -> float:
    """``achieved / reference`` guarded against a zero reference."""
    if reference <= 0:
        return 1.0 if achieved <= 0 else math.inf
    return achieved / reference


def setcover_blowup(solution_size: int, reference_size: int) -> float:
    """Size blow-up of a cover relative to the reference cover (≥ 1 is worse)."""
    if reference_size <= 0:
        return math.inf if solution_size > 0 else 1.0
    return solution_size / reference_size


def coverage_shortfall(
    graph: BipartiteGraph, solution: Iterable[int], target_fraction: float
) -> float:
    """How far below the target covered fraction the solution falls (0 if met)."""
    achieved = graph.coverage_fraction(solution)
    return max(0.0, target_fraction - achieved)


@dataclass
class SummaryStats:
    """Mean / min / max / stdev of a sample of measurements."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stdev: float

    def as_dict(self) -> dict[str, float | int]:
        """Flatten for table rows."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stdev": self.stdev,
        }


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summary statistics of a non-empty sequence of floats."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("cannot summarise an empty sequence")
    count = len(values)
    mean = sum(values) / count
    variance = sum((v - mean) ** 2 for v in values) / count
    return SummaryStats(
        count=count,
        mean=mean,
        minimum=min(values),
        maximum=max(values),
        stdev=math.sqrt(variance),
    )
