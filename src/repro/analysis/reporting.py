"""Rendering experiment suites into human-readable reports.

``EXPERIMENTS.md`` is regenerated from the benchmark runs through these
helpers, so the document's tables always match what the code produces.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.experiments import ExperimentSuite
from repro.utils.tables import Table

__all__ = ["render_suite_markdown", "render_comparison", "write_report"]


def render_suite_markdown(
    suite: ExperimentSuite,
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
    notes: Iterable[str] = (),
) -> str:
    """Render one suite as a Markdown section (title, notes, table)."""
    lines: list[str] = []
    lines.append(f"### {title or suite.name}")
    lines.append("")
    for note in notes:
        lines.append(f"- {note}")
    if notes:
        lines.append("")
    lines.append(suite.to_table(columns).to_markdown())
    lines.append("")
    return "\n".join(lines)


def render_comparison(
    suite: ExperimentSuite,
    metric: str,
    *,
    by: str = "algorithm",
    title: str | None = None,
) -> str:
    """Render the per-group summary of one metric as a Markdown table."""
    aggregates = suite.aggregate(metric, by=by)
    table = Table([by, "count", "mean", "min", "max", "stdev"])
    for group in sorted(aggregates):
        stats = aggregates[group]
        table.add_row(
            **{
                by: group,
                "count": stats["count"],
                "mean": stats["mean"],
                "min": stats["min"],
                "max": stats["max"],
                "stdev": stats["stdev"],
            }
        )
    header = title or f"{suite.name}: {metric} by {by}"
    return f"### {header}\n\n{table.to_markdown()}\n"


def write_report(path: str | Path, sections: Iterable[str], *, header: str = "") -> Path:
    """Write a sequence of Markdown sections to a file and return the path."""
    path = Path(path)
    body = "\n".join(sections)
    content = f"{header}\n\n{body}" if header else body
    path.write_text(content, encoding="utf-8")
    return path
