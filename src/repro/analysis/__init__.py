"""Metrics, experiment running and reporting."""

from repro.analysis.experiments import (
    ExperimentRow,
    ExperimentSuite,
    run_solver_comparison,
    run_streaming_comparison,
)
from repro.analysis.metrics import (
    SummaryStats,
    approximation_ratio,
    coverage_shortfall,
    kcover_reference_value,
    setcover_blowup,
    summarize,
)
from repro.analysis.plots import bar_chart, labeled_sparkline, sparkline
from repro.analysis.reporting import render_comparison, render_suite_markdown, write_report

__all__ = [
    "ExperimentRow",
    "ExperimentSuite",
    "run_streaming_comparison",
    "run_solver_comparison",
    "SummaryStats",
    "approximation_ratio",
    "coverage_shortfall",
    "kcover_reference_value",
    "setcover_blowup",
    "summarize",
    "render_comparison",
    "render_suite_markdown",
    "write_report",
    "bar_chart",
    "labeled_sparkline",
    "sparkline",
]
